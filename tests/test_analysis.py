"""Tests for :mod:`repro.analysis` — the determinism & contract linter.

Fixture files live under ``tests/data/lint/``: one known-violation and
one known-clean module per rule. The tests drive the rules through
:class:`~repro.analysis.ModuleContext` (so package-scoped rules can be
pinned to simulated module names), the engine's suppression and
baseline plumbing, the JSON reporter schema, and the ``lint_repro``
CLI end to end — including the acceptance gate that the repo's own
``src/repro`` tree is clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisEngine,
    Baseline,
    ModuleContext,
    RuleConfig,
    default_rules,
    fingerprint,
    render_json,
    render_text,
    select_rules,
)
from repro.analysis.engine import SUPPRESSION_RULE_ID
from repro.analysis.rules import (
    BlanketExceptRule,
    EpochMutationRule,
    FeatureSnapshotRule,
    UnboundedRetryRule,
    UnorderedIterationRule,
    UnseededRngRule,
    WallClockRule,
    module_name_of,
)

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "data" / "lint"
LINT_CLI = REPO / "tools" / "lint_repro.py"

#: Fixture stem → (rule instance, module name to lint it under).
#: R2 is package-scoped, so its fixtures masquerade as repro.sim files.
RULE_FIXTURES = {
    "r1": (UnseededRngRule(), None),
    "r2": (WallClockRule(), "repro.sim.fixture"),
    "r3": (UnorderedIterationRule(), None),
    "r4": (BlanketExceptRule(), None),
    "r5": (FeatureSnapshotRule(), None),
    "r6": (EpochMutationRule(), None),
    "r7": (UnboundedRetryRule(), None),
}


def load_fixture(name: str, module: str | None = None) -> ModuleContext:
    path = FIXTURES / f"{name}.py"
    return ModuleContext(path.read_text(), f"tests/data/lint/{name}.py", module=module)


def run_rule(rule, name: str, module: str | None = None):
    return list(rule.check(load_fixture(name, module)))


# -- one violation + one clean fixture per rule ------------------------------


@pytest.mark.parametrize("stem", sorted(RULE_FIXTURES))
def test_violation_fixture_flags(stem):
    rule, module = RULE_FIXTURES[stem]
    findings = run_rule(rule, f"{stem}_violation", module)
    assert findings, f"{stem}_violation.py should produce {rule.id} findings"
    assert all(f.rule == rule.id for f in findings)
    assert all(f.line > 0 and f.snippet for f in findings)


@pytest.mark.parametrize("stem", sorted(RULE_FIXTURES))
def test_clean_fixture_passes(stem):
    rule, module = RULE_FIXTURES[stem]
    assert run_rule(rule, f"{stem}_clean", module) == []


# -- per-rule specifics ------------------------------------------------------


def test_r1_counts_each_unseeded_draw():
    findings = run_rule(UnseededRngRule(), "r1_violation")
    # random.random, np.random.choice, bare default_rng
    assert len(findings) == 3
    assert any("default_rng" in f.message for f in findings)


def test_r2_is_package_scoped():
    rule = WallClockRule()
    # Outside the simulation packages the same source is not flagged …
    assert run_rule(rule, "r2_violation", None) == []
    assert run_rule(rule, "r2_violation", "repro.workloads.x") == []
    # … and the experiments allowlist wins over a sim-package prefix.
    config = RuleConfig(
        sim_packages=("repro.experiments",),
        wall_clock_allowlist=("repro.experiments",),
    )
    assert run_rule(WallClockRule(config), "r2_violation", "repro.experiments.store") == []


def test_r3_flags_keys_and_sets_distinctly():
    findings = run_rule(UnorderedIterationRule(), "r3_violation")
    assert len(findings) == 4
    assert sum(".keys()" in f.message for f in findings) == 1


def test_r4_ignores_base_exception_relays():
    findings = run_rule(BlanketExceptRule(), "r4_violation")
    assert len(findings) == 2
    assert any("bare except" in f.message for f in findings)


def test_r5_flags_only_the_re_read():
    findings = run_rule(FeatureSnapshotRule(), "r5_violation")
    assert len(findings) == 1
    assert "USE_FAST_PATH" in findings[0].message


def test_r6_flags_direct_and_aliased_stores():
    findings = run_rule(EpochMutationRule(), "r6_violation")
    assert len(findings) == 2
    assert {f.context for f in findings} == {
        "MiniTopology.sneak_move",
        "MiniTopology.sneak_alias",
    }


def test_r7_flags_each_unbounded_loop_and_names_the_call():
    findings = run_rule(UnboundedRetryRule(), "r7_violation")
    assert len(findings) == 2
    assert {f.context for f in findings} == {"pump", "insist"}
    assert any("transmit()" in f.message for f in findings)
    assert any("negotiate()" in f.message for f in findings)


# -- suppressions ------------------------------------------------------------

SUPPRESSED_SAME_LINE = """
def f(items):
    for x in set(items):  # repro: allow[R3] feeds an order-free sum
        yield x
"""

SUPPRESSED_BY_NAME_ABOVE = """
def f(items):
    # repro: allow[unordered-iteration] order-free consumer
    for x in set(items):
        yield x
"""

SUPPRESSION_WITHOUT_REASON = """
def f(items):
    for x in set(items):  # repro: allow[R3]
        yield x
"""

SUPPRESSION_WRONG_RULE = """
def f(items):
    for x in set(items):  # repro: allow[R4] not the right rule
        yield x
"""


def _engine():
    return AnalysisEngine(default_rules(), REPO)


def _analyze_source(source: str):
    module = ModuleContext(source, "synthetic.py")
    return _engine().analyze_modules([module])


def test_suppression_on_the_flagged_line():
    report = _analyze_source(SUPPRESSED_SAME_LINE)
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule == "R3"


def test_suppression_standalone_line_above_by_rule_name():
    report = _analyze_source(SUPPRESSED_BY_NAME_ABOVE)
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_suppression_without_reason_suppresses_nothing():
    report = _analyze_source(SUPPRESSION_WITHOUT_REASON)
    rules = {f.rule for f in report.findings}
    assert "R3" in rules  # the violation still fails
    assert SUPPRESSION_RULE_ID in rules  # and the broken allow is reported


def test_suppression_for_other_rule_does_not_apply():
    report = _analyze_source(SUPPRESSION_WRONG_RULE)
    assert [f.rule for f in report.findings] == ["R3"]
    assert report.suppressed == []


# -- baseline ----------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    module = load_fixture("r4_violation")
    engine = _engine()
    before = engine.analyze_modules([module])
    assert before.findings

    baseline = Baseline.from_findings(before.findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert len(reloaded.entries) == len(before.findings)

    after = engine.analyze_modules([module], baseline=reloaded)
    assert after.clean
    assert len(after.baselined) == len(before.findings)
    assert after.stale_baseline == []


def test_baseline_is_a_multiset_and_reports_stale(tmp_path):
    source = "def f(a):\n    for x in set(a):\n        yield x\n"
    module = ModuleContext(source, "m.py")
    engine = AnalysisEngine([UnorderedIterationRule()], REPO)
    baseline = Baseline.from_findings(engine.analyze_modules([module]).findings)

    # A second identical violation in the same scope exceeds the budget.
    doubled = ModuleContext(
        "def f(a):\n    for x in set(a):\n        yield x\n"
        "    for x in set(a):\n        yield x\n",
        "m.py",
    )
    report = engine.analyze_modules([doubled], baseline=baseline)
    assert len(report.baselined) == 1
    assert len(report.findings) == 1

    # Fixing the violation leaves the entry stale (reported, not failing).
    fixed = ModuleContext("def f(a):\n    return sorted(set(a))\n", "m.py")
    report = engine.analyze_modules([fixed], baseline=baseline)
    assert report.clean
    assert len(report.stale_baseline) == 1


def test_baseline_fingerprint_ignores_line_numbers():
    module_a = load_fixture("r4_violation")
    shifted = ModuleContext(
        "\n\n\n" + module_a.source, "tests/data/lint/r4_violation.py"
    )
    rule = BlanketExceptRule()
    original = [fingerprint(f) for f in rule.check(module_a)]
    moved = [fingerprint(f) for f in rule.check(shifted)]
    assert original == moved


def test_baseline_update_keeps_human_reasons(tmp_path):
    module = load_fixture("r4_violation")
    findings = _engine().analyze_modules([module]).findings
    first = Baseline.from_findings(findings)
    first.entries[0].reason = "carefully reviewed: tolerated on purpose"
    regenerated = Baseline.from_findings(findings)
    regenerated.merge_reasons(first)
    assert regenerated.entries[0].reason == "carefully reviewed: tolerated on purpose"


# -- reporters ---------------------------------------------------------------


def test_json_report_schema():
    module = load_fixture("r3_violation")
    rules = default_rules()
    report = AnalysisEngine(rules, REPO).analyze_modules([module])
    document = json.loads(render_json(report, rules))

    assert document["version"] == 1
    assert set(document) == {
        "version", "rules", "findings", "suppressed", "baselined",
        "stale_baseline", "summary",
    }
    assert set(document["rules"]) == {
        "R1", "R2", "R3", "R4", "R5", "R6", "R7",
    }
    for meta in document["rules"].values():
        assert set(meta) == {"name", "rationale"}
    for finding in document["findings"]:
        assert set(finding) == {
            "rule", "name", "path", "line", "col", "message", "context",
            "snippet", "fingerprint",
        }
        assert len(finding["fingerprint"]) == 16
    summary = document["summary"]
    assert summary["findings"] == len(document["findings"]) > 0
    assert summary["clean"] is False
    assert summary["files_checked"] == 1


def test_text_report_mentions_location_and_counts():
    module = load_fixture("r4_violation")
    report = _engine().analyze_modules([module])
    text = render_text(report)
    assert "tests/data/lint/r4_violation.py" in text
    assert "R4[blanket-except]" in text
    assert text.strip().endswith("across 1 file(s)")


# -- rule selection ----------------------------------------------------------


def test_select_rules_by_id_and_name():
    assert [r.id for r in select_rules(["R1", "R4"])] == ["R1", "R4"]
    assert [r.id for r in select_rules(["unordered-iteration"])] == ["R3"]
    with pytest.raises(ValueError, match="unknown rule"):
        select_rules(["R99"])


def test_module_name_of_layout():
    assert module_name_of("src/repro/sim/engine.py") == "repro.sim.engine"
    assert module_name_of("src/repro/analysis/__init__.py") == "repro.analysis"
    assert module_name_of("tools/lint_repro.py") is None
    assert module_name_of("tests/test_analysis.py") is None


# -- the CLI, end to end -----------------------------------------------------


def run_cli(*args: str):
    return subprocess.run(
        [sys.executable, str(LINT_CLI), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rid in ("R1", "R2", "R3", "R4", "R5", "R6", "R7"):
        assert rid in proc.stdout


def test_cli_flags_fixture_violations():
    proc = run_cli("--paths", "tests/data/lint", "--baseline", "/nonexistent.json")
    assert proc.returncode == 1
    assert "R1[unseeded-rng]" in proc.stdout
    assert "R4[blanket-except]" in proc.stdout


def test_cli_rules_subset_and_json(tmp_path):
    proc = run_cli(
        "--paths", "tests/data/lint", "--rules", "R4",
        "--baseline", str(tmp_path / "none.json"), "--json",
    )
    assert proc.returncode == 1
    document = json.loads(proc.stdout)
    assert {f["rule"] for f in document["findings"]} == {"R4"}
    assert set(document["rules"]) == {"R4"}


def test_cli_unknown_rule_exits_2():
    proc = run_cli("--rules", "R99")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_cli_missing_path_exits_2():
    proc = run_cli("--paths", "no/such/dir")
    assert proc.returncode == 2


def test_cli_update_baseline_then_clean(tmp_path):
    baseline = tmp_path / "baseline.json"
    update = run_cli(
        "--paths", "tests/data/lint/r4_violation.py",
        "--baseline", str(baseline), "--update-baseline",
    )
    assert update.returncode == 0
    assert baseline.is_file()
    data = json.loads(baseline.read_text())
    assert data["version"] == 1
    assert all(entry["reason"] for entry in data["entries"])

    gated = run_cli(
        "--paths", "tests/data/lint/r4_violation.py", "--baseline", str(baseline)
    )
    assert gated.returncode == 0, gated.stdout


def test_repo_tree_is_lint_clean():
    """The acceptance gate: src/repro passes with zero new findings."""
    proc = run_cli()
    assert proc.returncode == 0, f"lint_repro found new violations:\n{proc.stdout}"

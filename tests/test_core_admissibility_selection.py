"""Unit tests for admissibility (Section 6) and winner selection (4.2)."""

from __future__ import annotations

import pytest

from repro.core.admissibility import admissibility_failures, is_admissible
from repro.core.proposal import Proposal
from repro.core.selection import ScoredProposal, SelectionPolicy
from repro.errors import NoAdmissibleProposalError
from repro.qos import catalog
from repro.qos.catalog import COLOR_DEPTH, FRAME_RATE, SAMPLE_BITS, SAMPLING_RATE


@pytest.fixture
def request_():
    return catalog.surveillance_request()


def _proposal(node="n", **values):
    defaults = {FRAME_RATE: 10, COLOR_DEPTH: 3, SAMPLING_RATE: 8, SAMPLE_BITS: 8}
    defaults.update(values)
    return Proposal(task_id="t", node_id=node, values=defaults)


# -- admissibility ------------------------------------------------------------


def test_preferred_proposal_admissible(request_):
    assert is_admissible(request_, _proposal())
    assert admissibility_failures(request_, _proposal()) == []


def test_acceptable_degraded_proposal_admissible(request_):
    assert is_admissible(request_, _proposal(**{FRAME_RATE: 2, COLOR_DEPTH: 1}))


def test_missing_attribute_inadmissible(request_):
    p = Proposal(task_id="t", node_id="n",
                 values={FRAME_RATE: 10, COLOR_DEPTH: 3, SAMPLING_RATE: 8})
    failures = admissibility_failures(request_, p)
    assert any("missing attribute" in f for f in failures)


def test_out_of_domain_value_inadmissible(request_):
    failures = admissibility_failures(request_, _proposal(**{FRAME_RATE: 99}))
    assert any("domain violation" in f for f in failures)


def test_unacceptable_value_inadmissible(request_):
    """24-bit color is in the domain but the user never listed it."""
    failures = admissibility_failures(request_, _proposal(**{COLOR_DEPTH: 24}))
    assert any("not among the user's acceptable values" in f for f in failures)
    # Same for a frame rate above the acceptable intervals.
    assert not is_admissible(request_, _proposal(**{FRAME_RATE: 20}))


def test_dependency_violation_inadmissible():
    req = catalog.video_conference_request()
    from repro.qos.catalog import CODEC, RESOLUTION

    bad = Proposal(
        task_id="t", node_id="n",
        values={FRAME_RATE: 30, RESOLUTION: "720p", SAMPLING_RATE: 16,
                CODEC: "wavelet"},
    )
    # 30 fps isn't acceptable anyway ([20..10],[9..5]); use 20 vs dep:
    ok_fps = Proposal(
        task_id="t", node_id="n",
        values={FRAME_RATE: 20, RESOLUTION: "720p", SAMPLING_RATE: 16,
                CODEC: "wavelet"},
    )
    assert is_admissible(req, ok_fps)
    failures = admissibility_failures(req, bad)
    assert failures  # inadmissible for acceptability (and deps if applicable)


def test_multiple_failures_all_reported(request_):
    p = Proposal(task_id="t", node_id="n",
                 values={FRAME_RATE: 99, COLOR_DEPTH: 24})
    failures = admissibility_failures(request_, p)
    assert len(failures) >= 3  # bad fr, bad cd, two missing audio attrs


# -- selection ----------------------------------------------------------------


def _scored(node, distance, comm, new):
    return ScoredProposal(
        proposal=_proposal(node=node), distance=distance,
        comm_cost=comm, new_member=new,
    )


def test_lowest_distance_wins():
    policy = SelectionPolicy()
    best = policy.select([
        _scored("a", 0.5, 0.0, True),
        _scored("b", 0.1, 9.0, True),
        _scored("c", 0.3, 0.0, False),
    ])
    assert best.proposal.node_id == "b"


def test_comm_cost_breaks_distance_ties():
    policy = SelectionPolicy()
    best = policy.select([
        _scored("a", 0.2, 5.0, True),
        _scored("b", 0.2, 1.0, True),
    ])
    assert best.proposal.node_id == "b"


def test_member_reuse_breaks_remaining_ties():
    policy = SelectionPolicy()
    best = policy.select([
        _scored("a", 0.2, 1.0, True),
        _scored("b", 0.2, 1.0, False),  # already a member
    ])
    assert best.proposal.node_id == "b"


def test_disabled_criteria_are_ignored():
    no_comm = SelectionPolicy(use_comm_cost=False, use_coalition_size=False)
    candidates = [
        _scored("a", 0.2, 9.0, False),
        _scored("b", 0.2, 0.0, True),
    ]
    # Without comm/size, the stable-hash determinism break decides; both
    # orders give the same winner.
    w1 = no_comm.select(candidates)
    w2 = no_comm.select(list(reversed(candidates)))
    assert w1.proposal.node_id == w2.proposal.node_id


def test_distance_resolution_quantizes():
    policy = SelectionPolicy(distance_resolution=0.1)
    best = policy.select([
        _scored("a", 0.201, 5.0, True),
        _scored("b", 0.204, 1.0, True),  # same quantum -> comm decides
    ])
    assert best.proposal.node_id == "b"
    fine = SelectionPolicy(distance_resolution=1e-9)
    best2 = fine.select([
        _scored("a", 0.201, 5.0, True),
        _scored("b", 0.204, 1.0, True),
    ])
    assert best2.proposal.node_id == "a"


def test_rank_returns_sorted():
    policy = SelectionPolicy()
    ranked = policy.rank([
        _scored("a", 0.3, 0.0, True),
        _scored("b", 0.1, 0.0, True),
        _scored("c", 0.2, 0.0, True),
    ])
    assert [s.proposal.node_id for s in ranked] == ["b", "c", "a"]


def test_empty_selection_raises():
    with pytest.raises(NoAdmissibleProposalError):
        SelectionPolicy().select([])


def test_invalid_resolution():
    with pytest.raises(ValueError):
        SelectionPolicy(distance_resolution=0.0)


def test_score_helper(request_):
    from repro.core.evaluation import ProposalEvaluator

    evaluator = ProposalEvaluator(request_)
    proposals = [_proposal(node="x"), _proposal(node="y", **{FRAME_RATE: 5})]
    scored = SelectionPolicy.score(
        proposals, evaluator.distance, lambda n: 1.0 if n == "x" else 2.0,
        members={"y"},
    )
    by_node = {s.proposal.node_id: s for s in scored}
    assert by_node["x"].distance == 0.0
    assert by_node["x"].comm_cost == 1.0
    assert by_node["x"].new_member is True
    assert by_node["y"].new_member is False

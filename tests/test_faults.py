"""repro.faults: deterministic fault injection, retry and degradation.

Four test families:

* plan validation — the frozen dataclasses reject nonsense eagerly;
* closed forms — the Gilbert–Elliott chain's empirical loss matches its
  stationary mixture (bootstrap CI over seeds), the backoff schedule is
  the pure function it claims to be;
* determinism — hazard schedules replay exactly, partitions heal
  bit-identically, the ``reliable``/zero-loss channel paths consume no
  draws (the invariant that makes an empty plan a no-op);
* behaviour — the injector's seams (FaultyChannel, filter_proposals,
  award_handshake, install) and the committed DEGRADED → OPERATING
  partition-heal scenario: a session survives a healed partition in
  place, without renegotiating.
"""

from __future__ import annotations

import types

import numpy as np
import pytest

from repro.faults import (
    EMPTY_PLAN,
    AgentFaults,
    Brownout,
    CrashHazard,
    DelaySpike,
    FaultInjector,
    FaultPlan,
    FaultyChannel,
    GilbertElliott,
    Partition,
    ResilienceReport,
    RetryPolicy,
    make_injector,
)
from repro.metrics.bootstrap import bootstrap_ci
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.services import workload
from repro.sessions import SessionDriver, SessionPolicy, SessionState
from repro.sim.rng import RngRegistry
from repro.workloads.rates import ConstantRate


# -- plan validation --------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"p_gb": -0.1},
        {"p_bg": 1.5},
        {"loss_good": 2.0},
        {"loss_bad": -1.0},
    ],
)
def test_gilbert_elliott_rejects_non_probabilities(kwargs):
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        GilbertElliott(**kwargs)


def test_delay_spike_validation_and_window():
    with pytest.raises(ValueError):
        DelaySpike(start=-1.0, duration=5.0, extra_delay=0.1)
    with pytest.raises(ValueError):
        DelaySpike(start=0.0, duration=0.0, extra_delay=0.1)
    spike = DelaySpike(start=10.0, duration=5.0, extra_delay=0.25)
    assert not spike.active_at(9.99)
    assert spike.active_at(10.0) and spike.active_at(14.99)
    assert not spike.active_at(15.0)


def test_partition_validation_and_cross_pairs():
    with pytest.raises(ValueError, match="non-empty"):
        Partition(start=0.0, duration=1.0, group_a=(), group_b=("b",))
    with pytest.raises(ValueError, match="overlap"):
        Partition(start=0.0, duration=1.0, group_a=("x",), group_b=("x", "y"))
    part = Partition(start=5.0, duration=10.0, group_a=("a", "b"), group_b=("c",))
    assert part.heal_at == 15.0
    assert part.cross_pairs() == (("a", "c"), ("b", "c"))


def test_crash_hazard_and_brownout_validation():
    with pytest.raises(ValueError, match="recover_after"):
        CrashHazard(shape=ConstantRate(0.1), recover_after=0.0)
    with pytest.raises(ValueError, match="fraction"):
        Brownout(time=1.0, fraction=1.5)
    with pytest.raises(ValueError, match="time"):
        Brownout(time=-1.0, fraction=0.5)


def test_retry_policy_backoff_is_capped_exponential():
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, factor=2.0, max_delay=0.35)
    assert policy.backoff(0) == pytest.approx(0.1)
    assert policy.backoff(1) == pytest.approx(0.2)
    assert policy.backoff(2) == pytest.approx(0.35)  # capped
    assert policy.backoff(3) == pytest.approx(0.35)
    with pytest.raises(ValueError):
        policy.backoff(-1)
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="factor"):
        RetryPolicy(factor=0.5)


def test_plan_emptiness_is_the_injection_test():
    assert EMPTY_PLAN.empty
    # A retry policy alone is hardening config, not a fault.
    assert FaultPlan(retry=RetryPolicy(max_attempts=7)).empty
    assert FaultPlan(agents=AgentFaults()).empty  # all-zero agents
    assert not FaultPlan(link=GilbertElliott()).empty
    assert not FaultPlan(agents=AgentFaults(drop_propose=0.1)).empty
    plan = EMPTY_PLAN.replace(link=GilbertElliott())
    assert not plan.empty and EMPTY_PLAN.empty  # replace never mutates


# -- closed forms -----------------------------------------------------------


def test_gilbert_elliott_stationary_loss_matches_closed_form():
    """Empirical per-message loss over long chains brackets the
    stationary mixture ``(1 - pi_b) * loss_good + pi_b * loss_bad``
    (bootstrap CI over independent seeds)."""
    ge = GilbertElliott(p_gb=0.1, p_bg=0.4, loss_good=0.05, loss_bad=0.7)
    plan = FaultPlan(link=ge)
    n_messages = 4000
    rates = []
    for seed in range(12):
        injector = FaultInjector(plan, RngRegistry(seed))
        lost = sum(
            not injector.link_survives("a", "b") for _ in range(n_messages)
        )
        rates.append(lost / n_messages)
    ci = bootstrap_ci(rates)
    assert ci.contains(ge.stationary_loss), (ci, ge.stationary_loss)


def test_stationary_properties_degenerate_chains():
    frozen_good = GilbertElliott(p_gb=0.0, p_bg=0.0, loss_good=0.1)
    assert frozen_good.stationary_bad == 0.0
    assert frozen_good.stationary_loss == pytest.approx(0.1)
    always_bad = GilbertElliott(p_gb=1.0, p_bg=0.0, loss_bad=0.9)
    assert always_bad.stationary_bad == 1.0
    assert always_bad.stationary_loss == pytest.approx(0.9)


# -- determinism ------------------------------------------------------------


def _grid_nodes(n=24, cols=6, spacing=60.0):
    return [
        Node(
            f"n{i}",
            position=(spacing * (i % cols), spacing * (i // cols)),
        )
        for i in range(n)
    ]


def test_partition_heal_restores_routes_bit_identically():
    """Block + unblock leaves every route exactly as a never-partitioned
    twin computes it, and the overlay empties."""
    radio = DiscRadio(range_m=100.0)
    faulted = Topology(_grid_nodes(), radio)
    pristine = Topology(_grid_nodes(), radio)
    evens = tuple(f"n{i}" for i in range(0, 24, 2))
    odds = tuple(f"n{i}" for i in range(1, 24, 2))
    pairs = Partition(
        start=1.0, duration=1.0, group_a=evens, group_b=odds
    ).cross_pairs()

    faulted.block_links(pairs)
    assert faulted.blocked_links  # overlay active
    assert faulted.shortest_route("n0", "n1") != pristine.shortest_route("n0", "n1")
    faulted.unblock_links(pairs)

    assert not faulted.blocked_links
    ids = [n.node_id for n in _grid_nodes()]
    for src in ids:
        assert faulted.neighbors(src) == pristine.neighbors(src)
        for dst in ids:
            assert faulted.shortest_route(src, dst) == pristine.shortest_route(
                src, dst
            )


def test_blocking_bumps_the_topology_epoch():
    topo = Topology(_grid_nodes(), DiscRadio(range_m=100.0))
    before = topo.epoch
    topo.block_links([("n0", "n1")])
    assert topo.epoch > before  # cached routes must invalidate


def test_crash_schedule_is_replay_exact():
    plan = FaultPlan(crashes=CrashHazard(shape=ConstantRate(0.5)))
    ids = tuple(f"n{i}" for i in range(8))
    first = FaultInjector(
        plan, RngRegistry(3), horizon=40.0, protected=("n0",)
    ).crash_schedule(ids)
    second = FaultInjector(
        plan, RngRegistry(3), horizon=40.0, protected=("n0",)
    ).crash_schedule(ids)
    assert first == second and first  # same seed, same stream, same events
    assert all(0.0 <= t <= 40.0 for t, _ in first)
    assert all(victim != "n0" for _, victim in first)  # protected exempt
    other = FaultInjector(
        plan, RngRegistry(4), horizon=40.0, protected=("n0",)
    ).crash_schedule(ids)
    assert other != first  # a different seed realizes a different stream


def test_reliable_channel_consumes_zero_draws():
    """The pin behind the empty-plan A/B gate: ``reliable=True`` (and
    zero-loss links with zero jitter) never touch the RNG, so wrapping
    or unwrapping a fault-free channel cannot shift any stream."""
    from repro.network.channel import ChannelModel

    class CountingRng:
        draws = 0

        def __init__(self, inner):
            self.inner = inner

        def random(self):
            self.draws += 1
            return self.inner.random()

        def uniform(self, low, high):
            self.draws += 1
            return self.inner.uniform(low, high)

    class OneEdge:
        def __init__(self, loss):
            self.loss = loss

        def edge_quality(self, src, dst):
            return (1000.0, self.loss)

    rng = CountingRng(np.random.default_rng(0))
    reliable = ChannelModel(OneEdge(0.5), rng, reliable=True)
    for _ in range(10):
        assert reliable.transmit("a", "b", 1.0) is not None
    assert rng.draws == 0

    lossless = ChannelModel(OneEdge(0.0), rng, jitter=0.0)
    for _ in range(10):
        assert lossless.transmit("a", "b", 1.0) is not None
    assert rng.draws == 0  # no loss draw on loss=0, no jitter draw

    lossy = ChannelModel(OneEdge(0.5), rng, jitter=0.0)
    lossy.transmit("a", "b", 1.0)
    assert rng.draws == 1  # the loss draw, and only it


def test_empty_plan_injector_gate():
    registry = RngRegistry(0)
    assert make_injector(None, registry, 10.0) is None
    assert make_injector(EMPTY_PLAN, registry, 10.0) is None
    assert make_injector(FaultPlan(), registry, 10.0) is None
    assert "faults:link" not in registry  # nothing even created a stream
    injector = make_injector(FaultPlan(link=GilbertElliott()), registry, 10.0)
    assert isinstance(injector, FaultInjector)


def test_feature_switch_disables_non_empty_plans(monkeypatch):
    import repro.faults.injector as inj

    monkeypatch.setattr(inj, "USE_FAULTS", False)
    plan = FaultPlan(link=GilbertElliott())
    assert inj.make_injector(plan, RngRegistry(0), 10.0) is None


# -- injector seams ---------------------------------------------------------


def test_faulty_channel_drops_survivors_of_the_inner_channel():
    class PerfectChannel:
        propagation_delay = 0.002

        def transmit(self, src, dst, size_kb):
            return 0.01 if src != dst else 0.0

    always_lose = GilbertElliott(p_gb=0.0, p_bg=1.0, loss_good=1.0)
    injector = FaultInjector(FaultPlan(link=always_lose), RngRegistry(0))
    channel = injector.wrap_channel(PerfectChannel(), clock=lambda: 0.0)
    assert isinstance(channel, FaultyChannel)
    assert channel.transmit("a", "b", 1.0) is None  # chain eats it
    assert channel.transmit("a", "a", 1.0) == 0.0  # local delivery exempt
    assert channel.propagation_delay == 0.002  # attribute delegation


def test_faulty_channel_adds_spike_delay_inside_the_window():
    class PerfectChannel:
        def transmit(self, src, dst, size_kb):
            return 0.01

    spike = DelaySpike(start=10.0, duration=5.0, extra_delay=0.5)
    injector = FaultInjector(FaultPlan(delay_spikes=(spike,)), RngRegistry(0))
    now = {"t": 0.0}
    channel = injector.wrap_channel(PerfectChannel(), clock=lambda: now["t"])
    assert channel.transmit("a", "b", 1.0) == pytest.approx(0.01)
    now["t"] = 12.0
    assert channel.transmit("a", "b", 1.0) == pytest.approx(0.51)


def test_filter_proposals_never_touches_the_requesters_own():
    class P:
        def __init__(self, node_id):
            self.node_id = node_id

    drop_all = AgentFaults(drop_propose=1.0)
    injector = FaultInjector(FaultPlan(agents=drop_all), RngRegistry(0))
    by_task = {"t1": [P("req"), P("n1")], "t2": [P("n2")]}
    filtered, stale = injector.filter_proposals(
        "req", ("req", "n1", "n2"), by_task
    )
    assert [p.node_id for p in filtered["t1"]] == ["req"]
    assert filtered["t2"] == []
    assert stale == frozenset()


def test_award_handshake_budgets_and_refusal():
    # A refusing winner never acks, and costs no link draws.
    refuser = FaultInjector(
        FaultPlan(agents=AgentFaults(refuse_award=1.0)), RngRegistry(0)
    )
    assert refuser.award_handshake("req", "n1") == (False, 0, 0.0)

    # A dead link exhausts the bounded budget with backoff accounting.
    policy = RetryPolicy(max_attempts=3, base_delay=0.1, factor=2.0, max_delay=1.0)
    dead = GilbertElliott(p_gb=0.0, p_bg=1.0, loss_good=1.0)
    injector = FaultInjector(
        FaultPlan(link=dead, retry=policy), RngRegistry(0)
    )
    acked, retries, delay = injector.award_handshake("req", "n1")
    assert not acked
    assert retries == 2  # max_attempts - 1 waits
    assert delay == pytest.approx(0.1 + 0.2)

    # A clean link acks on the first attempt.
    clean = FaultInjector(
        FaultPlan(link=GilbertElliott(p_gb=0.0, p_bg=1.0, loss_good=0.0)),
        RngRegistry(0),
    )
    assert clean.award_handshake("req", "n1") == (True, 0, 0.0)


def test_install_rejects_partitions_without_link_overlays():
    plan = FaultPlan(
        partitions=(
            Partition(start=1.0, duration=1.0, group_a=("a",), group_b=("b",)),
        )
    )
    injector = FaultInjector(plan, RngRegistry(0))
    driver = types.SimpleNamespace(engine=None, topology=object())
    with pytest.raises(NotImplementedError, match="link overlays"):
        injector.install(driver)


# -- graceful degradation (the committed heal scenario) ---------------------


def _partition_cluster():
    nodes = [
        Node("requester", NodeClass.PHONE, position=(50.0, 50.0)),
        Node("pda", NodeClass.PDA, position=(60.0, 50.0)),
        Node("lap1", NodeClass.LAPTOP, position=(40.0, 50.0)),
        Node("lap2", NodeClass.LAPTOP, position=(50.0, 70.0)),
        Node("lap3", NodeClass.LAPTOP, position=(60.0, 60.0)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    return topology, providers


HELPERS = ("pda", "lap1", "lap2", "lap3")


def test_partition_heal_recovers_in_place_without_renegotiation():
    """The tentpole scenario: a partition cuts the organizer off from
    every helper, the session degrades at the next keepalive, the
    partition heals inside the grace window, and the session recovers
    DEGRADED → OPERATING in place — same awards, zero renegotiations."""
    topology, providers = _partition_cluster()
    plan = FaultPlan(
        partitions=(
            Partition(
                start=6.0, duration=8.0,
                group_a=("requester",), group_b=HELPERS,
            ),
        )
    )
    policy = SessionPolicy(operate=True, keepalive=5.0, partition_grace=10.0)
    driver = SessionDriver(topology, providers, policy)
    service = workload.movie_playback_service(requester="requester")
    session = driver.submit(service, 0.0, duration=30.0)
    injector = make_injector(plan, RngRegistry(0), horizon=30.0)
    injector.install(driver)
    driver.run()

    awarded_before_heal = {a.node_id for a in session.coalition.awards.values()}
    assert awarded_before_heal & set(HELPERS)  # the cut actually bit
    states = [(t, s) for t, s in session.transitions]
    timeline = [s for _, s in states]
    assert timeline == [
        SessionState.NEGOTIATING,
        SessionState.OPERATING,
        SessionState.DEGRADED,
        SessionState.OPERATING,
        SessionState.CLOSED,
    ]
    when = dict((s, t) for t, s in states)
    assert when[SessionState.DEGRADED] == 10.0  # keepalive after the cut
    assert when[SessionState.OPERATING] == 15.0  # keepalive after the heal
    assert session.renegotiations == 0
    assert session.coalition.reconfigurations == 0
    assert not session.suspended  # suspension cleared on recovery

    report = ResilienceReport.from_sessions([session])
    assert report.admitted == 1
    assert report.degraded_sessions == 1
    assert report.recovered == 1
    assert report.mean_recovery == pytest.approx(5.0)
    assert 0.0 < report.availability < 1.0


def test_partition_outliving_grace_expires_into_renegotiation():
    """Past the grace window, suspended members are released
    idempotently and the session renegotiates (or drops)."""
    topology, providers = _partition_cluster()
    plan = FaultPlan(
        partitions=(
            Partition(
                start=6.0, duration=40.0,  # never heals in-session
                group_a=("requester",), group_b=HELPERS,
            ),
        )
    )
    policy = SessionPolicy(
        operate=True, keepalive=5.0, partition_grace=7.0, max_renegotiations=2
    )
    driver = SessionDriver(topology, providers, policy)
    service = workload.movie_playback_service(requester="requester")
    session = driver.submit(service, 0.0, duration=30.0)
    injector = make_injector(plan, RngRegistry(0), horizon=30.0)
    injector.install(driver)
    driver.run()

    # Degraded at the first post-cut keepalive; the suspension expires
    # past the 7 s grace and forces a renegotiation attempt. With every
    # helper unreachable the replacement search fails and the session
    # ends dropped (the degraded-vs-dropped split E23 reports).
    reached = {s for _, s in session.transitions}
    assert SessionState.DEGRADED in reached
    assert session.state in (SessionState.DROPPED, SessionState.CLOSED)
    assert session.renegotiations + session.failed_renegotiations >= 1

    report = ResilienceReport.from_sessions([session])
    assert report.degraded_sessions == 1
    assert report.recovered == 0


def test_grace_zero_keeps_the_legacy_path():
    """``partition_grace=0`` (the default) never probes routes: a
    partitioned-but-alive coalition keeps operating exactly as before
    the subsystem existed."""
    topology, providers = _partition_cluster()
    plan = FaultPlan(
        partitions=(
            Partition(
                start=6.0, duration=8.0,
                group_a=("requester",), group_b=HELPERS,
            ),
        )
    )
    policy = SessionPolicy(operate=True, keepalive=5.0)  # grace defaults 0
    driver = SessionDriver(topology, providers, policy)
    service = workload.movie_playback_service(requester="requester")
    session = driver.submit(service, 0.0, duration=30.0)
    injector = make_injector(plan, RngRegistry(0), horizon=30.0)
    injector.install(driver)
    driver.run()
    assert session.state is SessionState.CLOSED
    assert all(s is not SessionState.DEGRADED for _, s in session.transitions)


def test_policy_rejects_negative_grace():
    with pytest.raises(ValueError, match="partition_grace"):
        SessionPolicy(partition_grace=-1.0)


# -- the resilience report --------------------------------------------------


def test_report_metrics_keys_are_stable():
    report = ResilienceReport.from_sessions([])
    assert set(report.metrics()) == {
        "admitted",
        "availability",
        "mean_recovery_s",
        "recovered",
        "degraded_sessions",
        "dropped",
        "award_retries",
        "retry_delay_s",
    }
    assert report.availability == 1.0  # vacuous: no admitted time

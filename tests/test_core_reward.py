"""Unit tests for eq. 1 local reward and penalty policies."""

from __future__ import annotations

import pytest

from repro.core.reward import (
    ConstantPenalty,
    LinearPenalty,
    QuadraticPenalty,
    local_reward,
)
from repro.errors import ReproError
from repro.qos import catalog
from repro.qos.catalog import COLOR_DEPTH, FRAME_RATE
from repro.qos.levels import DegradationLadder


@pytest.fixture
def ladder():
    return DegradationLadder.from_request(catalog.surveillance_request())


def test_reward_at_top_is_n(ladder):
    """eq. 1 first branch: r = n when served at Q_k1 everywhere."""
    assert local_reward(ladder.top()) == 4.0  # 4 attributes in the request


def test_reward_decreases_with_degradation(ladder):
    top = local_reward(ladder.top())
    one = local_reward(ladder.top().degrade(FRAME_RATE))
    two = local_reward(ladder.top().degrade(FRAME_RATE).degrade(FRAME_RATE))
    assert top > one > two


def test_reward_at_bottom_linear(ladder):
    # Both degradable attributes fully degraded: penalty 1 each.
    assert local_reward(ladder.bottom()) == pytest.approx(4.0 - 2.0)


def test_penalty_policies_zero_at_preferred():
    for policy in (LinearPenalty(), QuadraticPenalty(), ConstantPenalty()):
        assert policy(0, 5) == 0.0


def test_penalty_policies_monotone():
    for policy in (LinearPenalty(), QuadraticPenalty(), ConstantPenalty()):
        values = [policy(d, 6) for d in range(6)]
        assert all(values[i] <= values[i + 1] for i in range(5))


def test_linear_penalty_normalized_by_depth():
    p = LinearPenalty()
    assert p(4, 5) == pytest.approx(1.0)  # full degradation costs `scale`
    assert p(2, 5) == pytest.approx(0.5)
    assert p(0, 1) == 0.0  # single-level ladders cannot be penalized


def test_quadratic_penalty_convexity():
    p = QuadraticPenalty()
    assert p(2, 5) == pytest.approx(0.25)
    assert p(2, 5) < LinearPenalty()(2, 5)  # gentler near preferred
    assert p(4, 5) == pytest.approx(1.0)


def test_constant_penalty_binary():
    p = ConstantPenalty(scale=0.7)
    assert p(1, 5) == 0.7
    assert p(4, 5) == 0.7


def test_penalty_argument_validation():
    p = LinearPenalty()
    with pytest.raises(ReproError):
        p(-1, 5)
    with pytest.raises(ReproError):
        p(5, 5)  # distance beyond depth
    with pytest.raises(ReproError):
        p(0, 0)
    with pytest.raises(ReproError):
        LinearPenalty(scale=-1.0)


def test_reward_with_custom_policy(ladder):
    a = ladder.top().degrade(COLOR_DEPTH)
    r_const = local_reward(a, ConstantPenalty(scale=2.0))
    assert r_const == pytest.approx(4.0 - 2.0)


def test_reward_policy_changes_ranking(ladder):
    """Constant vs linear penalties order degradations differently."""
    one_deep = ladder.top().degrade(FRAME_RATE)           # 1 step of 10
    shallow_wide = ladder.top().degrade(COLOR_DEPTH)      # 1 step of 2
    lin_deep = local_reward(one_deep, LinearPenalty())
    lin_wide = local_reward(shallow_wide, LinearPenalty())
    # Linear: a frame-rate step costs 1/9, a color step costs 1/1.
    assert lin_deep > lin_wide
    const_deep = local_reward(one_deep, ConstantPenalty())
    const_wide = local_reward(shallow_wide, ConstantPenalty())
    assert const_deep == const_wide  # constant: any degradation equal

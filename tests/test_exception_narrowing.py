"""Regression tests for the narrowed exception handlers (PR 9).

Five sites used to catch blanket ``except Exception``; each now names
the exact type it intends to absorb. Every test here comes in pairs:

* the *absorbed* case — the narrow type is raised at the site and the
  surrounding machinery carries on exactly as before;
* the *propagated* case — an unrelated exception (``ValueError`` stands
  in for "a real bug") now escapes instead of being silently eaten.

The propagated case doubles as a vacuity guard: it proves the patched
``release`` really is invoked on the code path under test.
"""

from __future__ import annotations

import pickle
import queue

import pytest

from repro.core.negotiation import negotiate
from repro.core.operation import run_operation_phase
from repro.errors import UnknownReservationError
from repro.experiments.parallel import _unit_worker
from repro.experiments.plan import WorkUnit
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.services import workload
from repro.sessions import SessionDriver, SessionPolicy, SessionState
from repro.sim.engine import Engine


def _raise_release_once(provider, exc_type):
    """First release on ``provider`` raises ``exc_type``; later calls
    delegate to the real manager. That models the absorbed scenario —
    "this reservation was already reclaimed" — without also breaking the
    (deliberately unguarded) release at coalition dissolution."""
    original = provider.release
    fired = []

    def release(reservation, now):
        if not fired:
            fired.append(True)
            raise exc_type("injected by test")
        return original(reservation, now)

    provider.release = release


# -- operation.py: _abandon (no-recovery orphan release) ---------------------


def _negotiated_movie(small_cluster, movie_service):
    topology, providers, _nodes = small_cluster
    outcome = negotiate(movie_service, topology, providers, commit=True)
    video_tid = movie_service.tasks[0].task_id
    victim = outcome.coalition.awards[video_tid].node_id
    return topology, providers, outcome, video_tid, victim


def test_abandon_absorbs_unknown_reservation(small_cluster, movie_service):
    topology, providers, outcome, video_tid, victim = _negotiated_movie(
        small_cluster, movie_service
    )
    _raise_release_once(providers[victim], UnknownReservationError)
    report = run_operation_phase(
        outcome.coalition, topology, providers, Engine(seed=5),
        failures=[(5.0, victim)], allow_reconfiguration=False,
    )
    # The double release is benign: the phase still runs to dissolution
    # and the orphaned task is recorded lost, same as the clean path.
    assert report.outcomes[video_tid].status == "lost"
    assert report.failures_injected == 1


def test_abandon_propagates_unrelated_errors(small_cluster, movie_service):
    topology, providers, outcome, _video_tid, victim = _negotiated_movie(
        small_cluster, movie_service
    )
    _raise_release_once(providers[victim], ValueError)
    with pytest.raises(ValueError, match="injected by test"):
        run_operation_phase(
            outcome.coalition, topology, providers, Engine(seed=5),
            failures=[(5.0, victim)], allow_reconfiguration=False,
        )


# -- operation.py: _reconfigure (orphan release before renegotiation) --------


def test_reconfigure_absorbs_unknown_reservation(small_cluster, movie_service):
    topology, providers, outcome, video_tid, victim = _negotiated_movie(
        small_cluster, movie_service
    )
    _raise_release_once(providers[victim], UnknownReservationError)
    report = run_operation_phase(
        outcome.coalition, topology, providers, Engine(seed=5),
        failures=[(5.0, victim)],
    )
    # Reconfiguration proceeds despite the stale ledger entry.
    assert report.reconfigurations == 1
    out = report.outcomes[video_tid]
    assert out.status == "completed" and out.node_id != victim


def test_reconfigure_propagates_unrelated_errors(small_cluster, movie_service):
    topology, providers, outcome, _video_tid, victim = _negotiated_movie(
        small_cluster, movie_service
    )
    _raise_release_once(providers[victim], ValueError)
    with pytest.raises(ValueError, match="injected by test"):
        run_operation_phase(
            outcome.coalition, topology, providers, Engine(seed=5),
            failures=[(5.0, victim)],
        )


# -- operation.py: quiescence sweep (blocked successors still hold awards) ---


def _blocked_pipeline():
    """Negotiate the precedence pipeline on a cluster of half-capacity
    laptops (so the stages cannot all co-locate), pick the fetch-stage
    node as the victim, and return the successor tasks that will sit
    blocked — award in hand — until quiescence because fetch never
    completes."""
    half = Node("x", NodeClass.LAPTOP).capacity.scaled(0.5)
    nodes = [
        Node("requester", NodeClass.PHONE, position=(50.0, 50.0)),
        Node("pda", NodeClass.PDA, position=(60.0, 50.0)),
    ] + [
        Node(f"lap{i}", NodeClass.LAPTOP, capacity=half,
             position=(40.0 + 10 * i, 55.0))
        for i in range(1, 5)
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    service = workload.pipeline_service(requester="requester")
    outcome = negotiate(service, topology, providers, commit=True)
    awards = outcome.coalition.awards
    fetch_tid, decode_tid, enhance_tid = (t.task_id for t in service.tasks[:3])
    victim = awards[fetch_tid].node_id
    blocked = [
        tid for tid in (decode_tid, enhance_tid)
        if awards[tid].node_id != victim
    ]
    # The test is only meaningful if some successor survives the crash
    # on its own (alive) node and reaches the quiescence sweep.
    assert blocked, "pipeline placement put every stage on the victim"
    return topology, providers, outcome, victim, blocked


def _patch_release_for(providers, awards, task_ids, exc_type):
    """Make release raise for exactly the reservations of ``task_ids``;
    every other reservation (task completions, dissolution) releases
    normally, so only the quiescence-sweep calls are intercepted."""
    targeted = [awards[tid].reservation for tid in task_ids]
    for provider in providers.values():
        original = provider.release

        def release(reservation, now, _original=original):
            for i, t in enumerate(targeted):
                if reservation is t:
                    # Once per reservation: dissolution's (unguarded)
                    # retry afterwards must release normally.
                    targeted.pop(i)
                    raise exc_type("injected by test")
            return _original(reservation, now)

        provider.release = release


def test_quiescence_sweep_absorbs_unknown_reservation():
    topology, providers, outcome, victim, blocked = _blocked_pipeline()
    _patch_release_for(
        providers, outcome.coalition.awards, blocked, UnknownReservationError
    )
    report = run_operation_phase(
        outcome.coalition, topology, providers, Engine(seed=5),
        failures=[(2.0, victim)], allow_reconfiguration=False,
    )
    for tid in blocked:
        assert report.outcomes[tid].status == "lost"


def test_quiescence_sweep_propagates_unrelated_errors():
    topology, providers, outcome, victim, blocked = _blocked_pipeline()
    _patch_release_for(
        providers, outcome.coalition.awards, blocked, ValueError
    )
    with pytest.raises(ValueError, match="injected by test"):
        run_operation_phase(
            outcome.coalition, topology, providers, Engine(seed=5),
            failures=[(2.0, victim)], allow_reconfiguration=False,
        )


# -- sessions/driver.py: keepalive orphan release ----------------------------


def _streaming_cluster():
    nodes = [
        Node("requester", NodeClass.PHONE, position=(50.0, 50.0)),
        Node("pda", NodeClass.PDA, position=(60.0, 50.0)),
        Node("lap1", NodeClass.LAPTOP, position=(40.0, 50.0)),
        Node("lap2", NodeClass.LAPTOP, position=(50.0, 70.0)),
        Node("lap3", NodeClass.LAPTOP, position=(60.0, 60.0)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    return topology, providers


def _run_session_with_crash(exc_type):
    """Crash every serving helper at t=6 and rig the dead nodes'
    providers so the keepalive's orphan release raises ``exc_type``."""
    topology, providers = _streaming_cluster()
    policy = SessionPolicy(operate=True, keepalive=5.0, max_renegotiations=2)
    driver = SessionDriver(topology, providers, policy)
    service = workload.movie_playback_service(requester="requester")
    session = driver.submit(service, 0.0, duration=30.0)

    def crash(now):
        for task_id in sorted(session.live_tasks):
            node = topology.node(session.coalition.awards[task_id].node_id)
            if node.alive and node.node_id != service.requester:
                node.fail()
                _raise_release_once(providers[node.node_id], exc_type)
        topology.rebuild()

    driver.engine.schedule_at(6.0, crash)
    return driver, session


def test_keepalive_absorbs_unknown_reservation():
    driver, session = _run_session_with_crash(UnknownReservationError)
    driver.run()
    # The dead node's ledger having already reclaimed the reservation
    # must not stop the session from renegotiating and closing.
    assert session.state is SessionState.CLOSED
    assert session.renegotiations == 1


def test_keepalive_propagates_unrelated_errors():
    driver, _session = _run_session_with_crash(ValueError)
    with pytest.raises(ValueError, match="injected by test"):
        driver.run()


# -- experiments/parallel.py: worker exception round-trip --------------------


class _UnpicklableBoom(Exception):
    """Pickles fine but cannot be *unpickled*: the reduce path calls
    ``_UnpicklableBoom(<one message arg>)`` and this signature demands
    two, so ``pickle.loads`` raises ``TypeError`` — exactly the failure
    mode the worker's narrowed round-trip guard must absorb."""

    def __init__(self, left, right):
        super().__init__(f"{left}:{right}")


def _failing_run(exc):
    def run(seed):
        raise exc

    return run


def _run_one_unit(run_fn):
    unit = WorkUnit(index=0, suite="T", point_index=0, seed_index=0,
                    seed=123, run=run_fn)
    tasks: queue.Queue = queue.Queue()
    results: queue.Queue = queue.Queue()
    tasks.put(0)
    tasks.put(None)  # stop sentinel
    _unit_worker([unit], 7, tasks, results)
    index, worker_id, ok, payload, started, finished = results.get_nowait()
    assert (index, worker_id) == (0, 7) and finished >= started
    return ok, payload


def test_worker_wraps_unpicklable_exceptions():
    boom = _UnpicklableBoom("stage", 3)
    with pytest.raises(TypeError):
        pickle.loads(pickle.dumps(boom))  # the premise of the guard
    ok, relayed = _run_one_unit(_failing_run(boom))
    assert not ok
    assert isinstance(relayed, RuntimeError)
    assert "_UnpicklableBoom" in str(relayed) and "seed 123" in str(relayed)
    # The wrapper itself must survive the queue's pickling round-trip.
    assert isinstance(pickle.loads(pickle.dumps(relayed)), RuntimeError)


def test_worker_relays_picklable_exceptions_untouched():
    ok, relayed = _run_one_unit(_failing_run(ValueError("bad point")))
    assert not ok
    assert isinstance(relayed, ValueError)
    assert str(relayed) == "bad point"

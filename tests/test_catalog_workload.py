"""Unit tests for the QoS catalog and workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QoSSpecError
from repro.qos import catalog
from repro.qos.catalog import (
    AUDIO_QUALITY,
    CODEC,
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    SAMPLE_BITS,
    SAMPLING_RATE,
    VIDEO_QUALITY,
)
from repro.resources.kinds import ResourceKind
from repro.resources.node import NODE_CLASS_PROFILES, NodeClass
from repro.services import workload


# -- catalog specs ----------------------------------------------------------


def test_streaming_spec_matches_paper_section3():
    """The spec must reproduce the paper's example value sets exactly."""
    spec = catalog.video_streaming_spec()
    assert spec.dimension_names == (VIDEO_QUALITY, AUDIO_QUALITY)
    cd = spec.attribute(COLOR_DEPTH).domain
    assert set(cd.values) == {1, 3, 8, 16, 24}
    fr = spec.attribute(FRAME_RATE).domain
    assert fr.lo == 1 and fr.hi == 30
    sr = spec.attribute(SAMPLING_RATE).domain
    assert set(sr.values) == {8, 16, 24, 44}
    sb = spec.attribute(SAMPLE_BITS).domain
    assert set(sb.values) == {8, 16, 24}


def test_conference_spec_dependency_enforced():
    spec = catalog.video_conference_spec()
    ok = {FRAME_RATE: 15, RESOLUTION: "720p", SAMPLING_RATE: 16, CODEC: "wavelet"}
    spec.validate_assignment(ok)
    bad = dict(ok, **{FRAME_RATE: 25})
    from repro.errors import DependencyError

    with pytest.raises(DependencyError):
        spec.validate_assignment(bad)
    # Light codec has no fps limit.
    spec.validate_assignment(dict(bad, **{CODEC: "dct"}))


def test_synthetic_spec_shape():
    spec = catalog.synthetic_spec(3, 2, levels_per_attribute=5)
    assert len(spec.dimensions) == 3
    assert len(spec.attribute_names) == 6
    for name in spec.attribute_names:
        assert len(spec.attribute(name).domain.values) == 5
    with pytest.raises(ValueError):
        catalog.synthetic_spec(0, 1)


def test_synthetic_request_acceptable_levels():
    spec = catalog.synthetic_spec(2, 2, levels_per_attribute=5)
    full = catalog.synthetic_request(spec)
    limited = catalog.synthetic_request(spec, acceptable_levels=2)
    attr = spec.attribute_names[0]
    assert len(full.preference_for(attr).items) == 5
    assert len(limited.preference_for(attr).items) == 2


# -- workload calibration ------------------------------------------------------


def _cpu(model, values):
    return model.demand(values).get(ResourceKind.CPU)


def test_full_quality_video_overwhelms_handhelds():
    """Calibration target: full-quality decode fits a laptop, not a PDA."""
    model = workload.video_decode_demand()
    top = {FRAME_RATE: 30, COLOR_DEPTH: 24}
    cpu = _cpu(model, top)
    pda = NODE_CLASS_PROFILES[NodeClass.PDA].get(ResourceKind.CPU)
    laptop = NODE_CLASS_PROFILES[NodeClass.LAPTOP].get(ResourceKind.CPU)
    assert cpu > pda
    assert cpu < laptop


def test_degraded_surveillance_fits_pda():
    model = workload.video_decode_demand()
    degraded = {FRAME_RATE: 10, COLOR_DEPTH: 3}
    pda = NODE_CLASS_PROFILES[NodeClass.PDA].get(ResourceKind.CPU)
    assert _cpu(model, degraded) < pda


def test_audio_much_cheaper_than_video():
    video = workload.video_decode_demand()
    audio = workload.audio_decode_demand()
    v = _cpu(video, {FRAME_RATE: 30, COLOR_DEPTH: 24})
    a = _cpu(audio, {SAMPLING_RATE: 44, SAMPLE_BITS: 24})
    assert a < v / 3


def test_conference_codec_tradeoff():
    """The heavy codec trades CPU for bandwidth (Section 1's motivation)."""
    model = workload.conference_demand()
    base = {FRAME_RATE: 15, RESOLUTION: "480p", SAMPLING_RATE: 16}
    wavelet = model.demand(dict(base, **{CODEC: "wavelet"}))
    none = model.demand(dict(base, **{CODEC: "none"}))
    assert wavelet.get(ResourceKind.CPU) > none.get(ResourceKind.CPU)
    assert wavelet.get(ResourceKind.NET_BANDWIDTH) < none.get(ResourceKind.NET_BANDWIDTH)


def test_service_builders_produce_valid_services():
    for builder in (
        workload.movie_playback_service,
        workload.surveillance_service,
        workload.conference_service,
    ):
        service = builder(requester="r")
        assert service.requester == "r"
        assert len(service.tasks) >= 1
        for task in service.tasks:
            # Every task's preferred level has a computable demand.
            values = task.ladder().top().values()
            demand = task.demand_at(values)
            assert not demand.is_zero


def test_synthetic_service_scaling():
    rng = np.random.default_rng(1)
    small = workload.synthetic_service("r", rng, cpu_scale=10.0, name="s1")
    rng = np.random.default_rng(1)
    big = workload.synthetic_service("r", rng, cpu_scale=100.0, name="s2")
    s_cpu = small.tasks[0].demand_at(small.tasks[0].ladder().top().values()).get(ResourceKind.CPU)
    b_cpu = big.tasks[0].demand_at(big.tasks[0].ladder().top().values()).get(ResourceKind.CPU)
    assert b_cpu > s_cpu * 5


def test_task_fresh_ids_unique():
    from repro.services.task import Task

    ids = {Task.fresh_id("x") for _ in range(100)}
    assert len(ids) == 100


def test_service_validation():
    from repro.services.service import Service

    with pytest.raises(ValueError):
        Service(name="s", tasks=(), requester="r")
    t = workload.movie_playback_service("r").tasks[0]
    with pytest.raises(ValueError):
        Service(name="s", tasks=(t, t), requester="r")
    svc = Service(name="s", tasks=(t,), requester="r")
    assert svc.task(t.task_id) is t
    with pytest.raises(KeyError):
        svc.task("ghost")

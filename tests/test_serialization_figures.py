"""Unit tests for QoS serialization and ASCII figure rendering."""

from __future__ import annotations

import json

import pytest

from repro.errors import QoSSpecError, RequestError
from repro.experiments.figures import AsciiChart, figure_from_table
from repro.experiments.reporting import Table
from repro.metrics.stats import Summary
from repro.qos import catalog
from repro.qos.serialization import (
    domain_from_dict,
    domain_to_dict,
    request_from_dict,
    request_to_dict,
    spec_from_dict,
    spec_to_dict,
)


# -- domain roundtrip ------------------------------------------------------


def test_domain_roundtrip_discrete():
    from repro.qos.domain import DiscreteDomain
    from repro.qos.types import ValueType

    d = DiscreteDomain(ValueType.STRING, ("a", "b"))
    assert domain_from_dict(domain_to_dict(d)) == d


def test_domain_roundtrip_continuous():
    from repro.qos.domain import ContinuousDomain
    from repro.qos.types import ValueType

    d = ContinuousDomain(ValueType.FLOAT, 0.5, 2.5)
    assert domain_from_dict(domain_to_dict(d)) == d


def test_domain_malformed():
    with pytest.raises(QoSSpecError):
        domain_from_dict({"kind": "weird", "type": "integer"})
    with pytest.raises(QoSSpecError):
        domain_from_dict({"kind": "discrete"})


# -- spec roundtrip ------------------------------------------------------


def test_spec_roundtrip_streaming():
    spec = catalog.video_streaming_spec()
    data = spec_to_dict(spec)
    # JSON-compatible end to end.
    restored = spec_from_dict(json.loads(json.dumps(data)))
    assert restored.name == spec.name
    assert restored.dimension_names == spec.dimension_names
    assert restored.attribute_names == spec.attribute_names
    for name in spec.attribute_names:
        assert restored.attribute(name).domain == spec.attribute(name).domain
        assert restored.attribute(name).unit == spec.attribute(name).unit


def test_spec_with_dependencies_needs_registry():
    spec = catalog.video_conference_spec()
    data = spec_to_dict(spec)
    with pytest.raises(QoSSpecError):
        spec_from_dict(data)  # predicate missing
    registry = {
        "heavy-codec-fps-limit": lambda v: v[catalog.CODEC] != "wavelet"
        or v[catalog.FRAME_RATE] <= 20
    }
    restored = spec_from_dict(data, dependency_registry=registry)
    assert len(restored.dependencies) == 1
    # Restored dependency behaves like the original.
    ok = {catalog.CODEC: "wavelet", catalog.FRAME_RATE: 15}
    bad = {catalog.CODEC: "wavelet", catalog.FRAME_RATE: 25}
    assert restored.dependencies.satisfied(ok)
    assert not restored.dependencies.satisfied(bad)


# -- request roundtrip ------------------------------------------------------


def test_request_roundtrip_surveillance():
    spec = catalog.video_streaming_spec()
    request = catalog.surveillance_request(spec)
    data = json.loads(json.dumps(request_to_dict(request)))
    restored = request_from_dict(data, spec)
    assert restored.name == request.name
    assert restored.attribute_names == request.attribute_names
    assert restored.preferred_assignment() == request.preferred_assignment()
    # Interval semantics survive.
    assert restored.accepts(catalog.FRAME_RATE, 7)
    assert not restored.accepts(catalog.FRAME_RATE, 12)


def test_request_spec_mismatch():
    spec = catalog.video_streaming_spec()
    other = catalog.video_conference_spec()
    data = request_to_dict(catalog.surveillance_request(spec))
    with pytest.raises(RequestError):
        request_from_dict(data, other)


def test_request_malformed():
    spec = catalog.video_streaming_spec()
    with pytest.raises(RequestError):
        request_from_dict({"spec": spec.name, "dimensions": [{}]}, spec)


# -- figures ----------------------------------------------------------------


def test_ascii_chart_renders_series():
    chart = AsciiChart("T", x_label="n", y_label="u", width=40, height=8)
    chart.add_series("up", [1, 2, 3, 4], [0.1, 0.4, 0.7, 1.0])
    chart.add_series("down", [1, 2, 3, 4], [1.0, 0.6, 0.3, 0.0])
    text = chart.render()
    assert "T" in text
    assert "* up" in text and "o down" in text
    assert "(n)" in text
    # The glyphs actually appear in the plot area.
    assert text.count("*") >= 4 and text.count("o") >= 4


def test_ascii_chart_flat_series():
    chart = AsciiChart("flat", width=20, height=5)
    chart.add_series("c", [0, 1], [2.0, 2.0])
    assert "c" in chart.render()  # degenerate y-range handled


def test_ascii_chart_validation():
    chart = AsciiChart("T")
    with pytest.raises(ValueError):
        chart.render()  # no series
    with pytest.raises(ValueError):
        chart.add_series("s", [1, 2], [1.0])
    chart.add_series("s", [1], [1.0])
    with pytest.raises(ValueError):
        chart.add_series("s", [1], [1.0])  # duplicate
    with pytest.raises(ValueError):
        AsciiChart("T", width=5)


def test_figure_from_table():
    table = Table("data", ["x", "y"])
    table.add_row(1, Summary(0.5, 0, 0, 1, 0.5, 0.5))
    table.add_row(2, Summary(0.8, 0, 0, 1, 0.8, 0.8))
    chart = figure_from_table(table, "x", ["y"], title="F", y_label="val")
    assert "F" in chart.render()

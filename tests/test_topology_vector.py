"""Vectorized topology arena: equivalence, epochs, cache invalidation.

Three families of guarantees are pinned here:

* **radio matrices** — the vectorized ``*_matrix`` methods agree
  *elementwise, bit for bit* with the scalar curves on random placements
  (both the broadcasting `DiscRadio` overrides and the generic
  scalar-fallback base implementations);
* **A/B equivalence** — a vector-mode :class:`Topology` and a legacy
  networkx-mode one (``USE_VECTOR_TOPOLOGY = False``) answer every query
  identically on random placements: neighbor order, link qualities,
  shortest routes (including tie-rich dense clusters), k-hop orders,
  analysis helpers and the materialized graph;
* **epochs** — neighbor/route caches refresh after ``add_node``,
  ``remove_node``, node death and ``rebuild()``, and the epoch counter
  observes liveness flips the moment they happen.

The vectorized mobility fast paths are pinned seed-identical against
reference replays of the original scalar walks, and the engine's O(1)
``pending`` counter against its heap.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.network.topology as topology_mod
from repro.errors import UnknownNodeError
from repro.network.geometry import clamp_to_area, distance, lerp, pairwise_distances
from repro.network.mobility import GroupMobility, RandomWaypoint
from repro.network.radio import DiscRadio, RadioModel
from repro.network.topology import Topology
from repro.resources.node import Node
from repro.sim.engine import Engine


def _random_nodes(n, area, rng, prefix="n"):
    return [
        Node(f"{prefix}{i}", position=(rng.uniform(0, area), rng.uniform(0, area)))
        for i in range(n)
    ]


def _build_pair(n, area, seed, range_m=100.0, radio=None):
    """Identical fleets under a vector-mode and a legacy-mode topology."""
    mk_radio = (lambda: radio) if radio is not None else (
        lambda: DiscRadio(range_m=range_m)
    )
    rng = np.random.default_rng(seed)
    placements = [(rng.uniform(0, area), rng.uniform(0, area)) for _ in range(n)]
    fleets = []
    topos = []
    for vectorized in (True, False):
        nodes = [Node(f"n{i}", position=p) for i, p in enumerate(placements)]
        old = topology_mod.USE_VECTOR_TOPOLOGY
        topology_mod.USE_VECTOR_TOPOLOGY = vectorized
        try:
            topos.append(Topology(nodes, mk_radio()))
        finally:
            topology_mod.USE_VECTOR_TOPOLOGY = old
        fleets.append(nodes)
    return topos[0], topos[1], fleets[0], fleets[1]


# -- radio matrices (property: vectorized == scalar, elementwise) -----------


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_disc_radio_matrices_match_scalar_elementwise(seed):
    rng = np.random.default_rng(seed)
    n = 40
    pts = [(rng.uniform(0, 250), rng.uniform(0, 250)) for _ in range(n)]
    radio = DiscRadio(range_m=100.0, nominal_bandwidth=4321.0,
                      min_rate_fraction=0.15, base_loss=0.01, edge_loss=0.2)
    pos = np.asarray(pts)
    dist = pairwise_distances(pos, exact_within=radio.matrix_distance_cutoff)
    in_r = radio.in_range_matrix(dist)
    bw = radio.bandwidth_matrix(dist)
    loss = radio.loss_matrix(dist)
    for i in range(n):
        for j in range(n):
            assert bool(in_r[i, j]) == radio.in_range(pts[i], pts[j])
            if in_r[i, j]:
                # Exact distances inside the cutoff: values must be
                # bit-identical to the scalar curves.
                assert float(bw[i, j]) == radio.bandwidth(pts[i], pts[j])
                assert float(loss[i, j]) == radio.loss_probability(pts[i], pts[j])
            else:
                assert float(bw[i, j]) == 0.0
                assert float(loss[i, j]) == 1.0


class _StepRadio(RadioModel):
    """A distance-based model relying on the base-class matrix fallbacks."""

    def in_range(self, a, b):
        return distance(a, b) <= 90.0

    def bandwidth(self, a, b):
        d = distance(a, b)
        return 0.0 if d > 90.0 else 1000.0 - 7.0 * d

    def loss_probability(self, a, b):
        d = distance(a, b)
        return 1.0 if d > 90.0 else d / 123.0


def test_base_class_matrix_fallbacks_match_scalar():
    rng = np.random.default_rng(9)
    pts = [(rng.uniform(0, 200), rng.uniform(0, 200)) for _ in range(12)]
    radio = _StepRadio()
    assert radio.matrix_distance_cutoff is None  # exact everywhere
    dist = pairwise_distances(np.asarray(pts), exact_within=None)
    in_r = radio.in_range_matrix(dist)
    bw = radio.bandwidth_matrix(dist)
    loss = radio.loss_matrix(dist)
    for i in range(12):
        for j in range(12):
            assert bool(in_r[i, j]) == radio.in_range(pts[i], pts[j])
            assert float(bw[i, j]) == radio.bandwidth(pts[i], pts[j])
            assert float(loss[i, j]) == radio.loss_probability(pts[i], pts[j])


def test_pairwise_distances_exact_within_threshold():
    rng = np.random.default_rng(17)
    pts = [(rng.uniform(0, 300), rng.uniform(0, 300)) for _ in range(60)]
    dist = pairwise_distances(np.asarray(pts), exact_within=100.0)
    full = pairwise_distances(np.asarray(pts), exact_within=None)
    for i in range(60):
        for j in range(60):
            expected = distance(pts[i], pts[j])
            assert full[i, j] == expected
            if expected <= 100.0:
                assert dist[i, j] == expected


# -- A/B equivalence: vector arena vs legacy networkx ------------------------


@pytest.mark.parametrize("area,seed", [
    (100.0, 1),   # dense: one big clique-ish component, many cost ties
    (250.0, 2),   # mixed
    (420.0, 3),   # sparse multi-hop
    (800.0, 4),   # mostly disconnected
])
def test_vector_matches_legacy_on_random_placements(area, seed):
    vec, leg, _, _ = _build_pair(32, area, seed)
    ids = [f"n{i}" for i in range(32)]
    for a in ids:
        assert vec.neighbors(a) == leg.neighbors(a)
        assert vec.reachable_set(a) == leg.reachable_set(a)
        for k in (1, 2, 3, 6):
            assert vec.khop_neighbors(a, k) == leg.khop_neighbors(a, k)
    for a in ids:
        for b in ids:
            assert vec.connected(a, b) == leg.connected(a, b)
            if vec.connected(a, b):
                assert vec.link_bandwidth(a, b) == leg.link_bandwidth(a, b)
                assert vec.link_loss(a, b) == leg.link_loss(a, b)
                assert vec.edge_quality(a, b) == leg.edge_quality(a, b)
                assert vec.communication_cost(a, b) == leg.communication_cost(a, b)
            else:
                assert vec.edge_quality(a, b) is None
            assert vec.shortest_route(a, b) == leg.shortest_route(a, b)
            cv, cl = vec.multihop_cost(a, b), leg.multihop_cost(a, b)
            assert cv == cl or (cv == float("inf") and cl == float("inf"))
    assert vec.component_count() == leg.component_count()
    assert vec.average_degree() == leg.average_degree()


def test_materialized_graph_matches_legacy():
    vec, leg, _, _ = _build_pair(24, 260.0, 11)
    g_vec, g_leg = vec.graph, leg.graph
    assert list(g_vec.nodes) == list(g_leg.nodes)
    assert list(g_vec.edges) == list(g_leg.edges)
    for u, v in g_leg.edges:
        for attr in ("bandwidth", "loss", "distance"):
            assert g_vec.edges[u, v][attr] == g_leg.edges[u, v][attr]


def test_vector_matches_legacy_after_mobility_rebuilds():
    vec, leg, fleet_v, fleet_l = _build_pair(20, 300.0, 7)
    move_rng = np.random.default_rng(21)
    for _ in range(5):
        for nv, nl in zip(fleet_v, fleet_l):
            x, y = move_rng.uniform(0, 300), move_rng.uniform(0, 300)
            nv.move_to(x, y)
            nl.move_to(x, y)
        vec.rebuild()
        leg.rebuild()
        for i in range(20):
            a = f"n{i}"
            assert vec.neighbors(a) == leg.neighbors(a)
            for j in range(20):
                b = f"n{j}"
                assert vec.shortest_route(a, b) == leg.shortest_route(a, b)


def test_vector_matches_legacy_with_dead_nodes():
    vec, leg, fleet_v, fleet_l = _build_pair(16, 220.0, 13)
    for idx in (2, 9):
        fleet_v[idx].fail()
        fleet_l[idx].fail()
    vec.rebuild()
    leg.rebuild()
    for i in range(16):
        a = f"n{i}"
        assert vec.neighbors(a) == leg.neighbors(a)
        for j in range(16):
            assert vec.shortest_route(a, f"n{j}") == leg.shortest_route(a, f"n{j}")
    assert vec.component_count() == leg.component_count()


# -- epochs and cache invalidation -------------------------------------------


def _line_topology():
    nodes = [
        Node("a", position=(0, 0)),
        Node("b", position=(50, 0)),
        Node("c", position=(120, 0)),
    ]
    return Topology(nodes, DiscRadio(range_m=80.0)), nodes


def test_epoch_advances_on_rebuild_membership_and_liveness():
    topo, nodes = _line_topology()
    e0 = topo.epoch
    topo.rebuild()
    assert topo.epoch > e0
    e1 = topo.epoch
    topo.add_node(Node("d", position=(10, 0)))
    assert topo.epoch > e1
    e2 = topo.epoch
    topo.remove_node("d")
    assert topo.epoch > e2
    e3 = topo.epoch
    nodes[1].fail()           # liveness flip observed without a rebuild
    assert topo.epoch > e3
    e4 = topo.epoch
    nodes[1].fail()           # no flip -> no bump
    assert topo.epoch == e4
    nodes[1].recover()
    assert topo.epoch > e4


def test_route_cache_refreshes_after_rebuild():
    topo, nodes = _line_topology()
    assert topo.shortest_route("a", "c") == ("a", "b", "c")
    cost_before = topo.multihop_cost("a", "c")
    assert cost_before < float("inf")
    # Prime the caches, then move the relay out of range.
    nodes[1].move_to(500, 0)
    topo.rebuild()
    assert topo.shortest_route("a", "c") is None
    assert topo.multihop_cost("a", "c") == float("inf")
    assert topo.neighbors("a") == ()


def test_neighbor_and_route_caches_refresh_after_add_node():
    topo, _ = _line_topology()
    assert topo.neighbors("a") == ("b",)
    topo.add_node(Node("relay", position=(60, 40)))
    assert topo.neighbors("relay") == ()   # no edges until rebuild
    topo.rebuild()
    assert "relay" in topo.neighbors("a")
    assert topo.shortest_route("relay", "c") is not None


def test_caches_refresh_after_remove_node_without_rebuild():
    topo, _ = _line_topology()
    assert topo.shortest_route("a", "c") == ("a", "b", "c")
    assert topo.khop_neighbors("a", 2) == ("b", "c")
    topo.remove_node("b")          # networkx semantics: edges vanish now
    assert topo.neighbors("a") == ()
    assert topo.shortest_route("a", "c") is None
    assert topo.khop_neighbors("a", 2) == ()
    assert topo.average_degree() == 0.0
    with pytest.raises(UnknownNodeError):
        topo.connected("a", "b")


def test_caches_refresh_after_node_death():
    topo, nodes = _line_topology()
    assert topo.khop_neighbors("a", 2) == ("b", "c")  # prime BFS cache
    assert topo.shortest_route("a", "c") == ("a", "b", "c")
    nodes[1].fail()
    # Pre-rebuild the radio links persist (crashing software does not
    # remove a link budget) — identical to the legacy graph semantics.
    assert topo.connected("a", "b")
    topo.rebuild()
    assert topo.neighbors("a") == ()
    assert topo.khop_neighbors("a", 2) == ()
    assert topo.shortest_route("a", "c") is None


def test_death_and_recovery_roundtrip_routes():
    topo, nodes = _line_topology()
    route = topo.shortest_route("a", "c")
    nodes[1].fail()
    topo.rebuild()
    assert topo.shortest_route("a", "c") is None
    nodes[1].recover()
    topo.rebuild()
    assert topo.shortest_route("a", "c") == route


def test_legacy_mode_flag_roundtrip():
    old = topology_mod.USE_VECTOR_TOPOLOGY
    try:
        topology_mod.USE_VECTOR_TOPOLOGY = False
        topo, nodes = _line_topology()
        assert not topo._vectorized
        assert topo.neighbors("b") == ("a", "c")
        assert topo.multihop_cost("a", "c") == pytest.approx(
            topo.communication_cost("a", "b") + topo.communication_cost("b", "c")
        )
    finally:
        topology_mod.USE_VECTOR_TOPOLOGY = old


def test_liveness_watcher_detached_on_remove():
    topo, nodes = _line_topology()
    topo.remove_node("b")
    epoch = topo.epoch
    nodes[1].fail()            # no longer registered: no bump
    assert topo.epoch == epoch


# -- mobility: vectorized fast paths are seed-identical ----------------------


def _reference_waypoint_advance(model, nodes, dt):
    """The original (pre-vectorization) scalar walk, verbatim."""
    if model.speed_max <= 0.0:
        return
    for node in nodes:
        state = model._state.get(node.node_id)
        if state is None:
            state = model._new_leg(node)
        remaining = dt
        dest, speed, pausing = state
        pos = node.position
        while remaining > 1e-12:
            if pausing > 0.0:
                wait = min(pausing, remaining)
                pausing -= wait
                remaining -= wait
                if pausing == 0.0:
                    dest, speed, _ = model._new_leg(node)
                continue
            gap = distance(pos, dest)
            travel_time = gap / speed if speed > 0 else float("inf")
            if travel_time <= remaining:
                pos = dest
                remaining -= travel_time
                pausing = model.pause
                if pausing == 0.0:
                    dest, speed, _ = model._new_leg(node)
            else:
                pos = lerp(pos, dest, (speed * remaining) / gap)
                remaining = 0.0
        node.move_to(*clamp_to_area(pos, model.width, model.height))
        model._state[node.node_id] = (dest, speed, pausing)


@pytest.mark.parametrize("pause,dt", [(0.0, 1.0), (0.5, 1.0), (2.0, 0.25), (0.0, 7.5)])
def test_random_waypoint_vectorized_trace_identical(pause, dt):
    fleets = []
    models = []
    for _ in range(2):
        rng = np.random.default_rng(42)
        nodes = [Node(f"n{i}") for i in range(25)]
        model = RandomWaypoint(300, 300, speed_min=0.5, speed_max=6.0,
                               pause=pause, rng=rng)
        model.place(nodes)
        fleets.append(nodes)
        models.append(model)
    for step in range(60):
        models[0].advance(fleets[0], dt)                      # vectorized
        _reference_waypoint_advance(models[1], fleets[1], dt)  # scalar replay
        for a, b in zip(fleets[0], fleets[1]):
            assert a.position == b.position, (step, a.node_id)
        assert models[0]._state == models[1]._state, step


def test_group_mobility_vectorized_trace_identical():
    fleets = []
    models = []
    for _ in range(2):
        leader = RandomWaypoint(200, 200, 1.0, 3.0, 0.0, np.random.default_rng(5))
        model = GroupMobility(leader, spread=15.0, rng=np.random.default_rng(6))
        nodes = [Node(f"n{i}") for i in range(17)]
        model.place(nodes)
        fleets.append(nodes)
        models.append(model)

    def reference_scatter(model, nodes):
        cx, cy = model._leader.position
        for node in nodes:
            angle = float(model.rng.uniform(0, 2 * np.pi))
            radius = float(model.rng.uniform(0, model.spread))
            node.move_to(
                *clamp_to_area(
                    (cx + radius * np.cos(angle), cy + radius * np.sin(angle)),
                    model.leader_model.width,
                    model.leader_model.height,
                )
            )

    for step in range(40):
        models[0].leader_model.advance([models[0]._leader], 1.0)
        models[0]._scatter(fleets[0])                          # vectorized
        models[1].leader_model.advance([models[1]._leader], 1.0)
        reference_scatter(models[1], fleets[1])                # scalar replay
        for a, b in zip(fleets[0], fleets[1]):
            assert a.position == b.position, (step, a.node_id)


# -- engine: O(1) pending counter --------------------------------------------


def test_pending_counter_tracks_push_cancel_pop():
    eng = Engine()
    handles = [eng.schedule(float(i + 1), lambda now: None) for i in range(5)]
    assert eng.pending == 5
    assert handles[2].cancel() is True
    assert eng.pending == 4
    assert handles[2].cancel() is False     # double-cancel: no double count
    assert eng.pending == 4
    eng.step()
    assert eng.pending == 3
    eng.run()
    assert eng.pending == 0


def test_cancel_after_fire_is_noop():
    eng = Engine()
    handle = eng.schedule(1.0, lambda now: None)
    eng.run()
    assert eng.pending == 0
    assert handle.cancel() is False          # already fired
    assert eng.pending == 0                  # and the counter is untouched


def test_pending_counter_with_nested_scheduling_and_stop():
    eng = Engine()

    def first(now):
        eng.schedule(1.0, lambda t: None)
        eng.schedule(2.0, lambda t: None)
        eng.stop()

    eng.schedule(1.0, first)
    eng.schedule(5.0, lambda now: None)
    eng.run()
    assert eng.pending == 3                  # two nested + the 5.0 event
    eng.run()
    assert eng.pending == 0


def test_pending_matches_heap_scan_under_random_workload():
    rng = np.random.default_rng(3)
    eng = Engine()
    handles = []
    for _ in range(300):
        op = rng.integers(0, 3)
        if op == 0 or not handles:
            handles.append(eng.schedule(float(rng.uniform(0, 10)), lambda now: None))
        elif op == 1:
            handles[int(rng.integers(0, len(handles)))].cancel()
        else:
            for _ in range(int(rng.integers(1, 4))):
                eng.step()
        scan = sum(1 for e in eng._heap if not e.cancelled)
        assert eng.pending == scan

"""Integration tests: monitors over live negotiations, group mobility."""

from __future__ import annotations

import pytest

from repro.agents.system import AgentSystem
from repro.core.negotiation import release_coalition
from repro.network.mobility import GroupMobility, RandomWaypoint
from repro.network.geometry import distance
from repro.resources.kinds import ResourceKind
from repro.resources.node import Node, NodeClass
from repro.services import workload
from repro.sim.monitor import Monitor
from repro.sim.rng import RngRegistry


def test_monitor_tracks_reservation_utilization():
    """A Monitor sampling a helper's utilization sees the award land and
    (after lease expiry without renewal) drain back to zero."""
    from repro.network.mobility import StaticPlacement

    nodes = [Node("me", NodeClass.PHONE), Node("lap", NodeClass.LAPTOP)]
    placement = StaticPlacement(
        100.0, 100.0, RngRegistry(3).stream("p"),
        positions={"me": (0, 0), "lap": (10, 0)},
    )
    system = AgentSystem(nodes, seed=3, mobility=placement, reliable_channel=True)
    lap_manager = system.nodes["lap"].manager
    monitor = Monitor(
        system.engine, lambda: lap_manager.utilization(), period=0.5,
        name="lap-util",
    )
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    assert outcome is not None and outcome.success
    system.engine.run(until=system.engine.now + 2.0)
    monitor.stop()
    series = monitor.series
    assert series.values[0] == 0.0          # idle before the CFP
    assert series.max() > 0.0               # the award reserved resources
    assert series.last() > 0.0              # still held (lease not expired)


def test_group_mobility_agent_system_end_to_end():
    """A group of devices moving together stays mutually connected and
    keeps serving requests while the group wanders."""
    registry = RngRegistry(8)
    leader = RandomWaypoint(400, 400, 1.0, 3.0, pause=1.0,
                            rng=registry.stream("leader"))
    mobility = GroupMobility(leader, spread=30.0, rng=registry.stream("jitter"))
    nodes = [Node("me", NodeClass.PHONE)] + [
        Node(f"buddy{i}", NodeClass.LAPTOP) for i in range(3)
    ]
    system = AgentSystem(nodes, seed=8, mobility=mobility, reliable_channel=True)
    system.start_mobility_process(tick=1.0, until=200.0)
    successes = 0
    for i in range(4):
        service = workload.movie_playback_service(requester="me", name=f"g{i}")
        outcome = system.negotiate(service)
        if outcome is not None and outcome.success:
            successes += 1
            release_coalition(outcome.coalition, system.providers,
                              system.engine.now)
        system.engine.run(until=system.engine.now + 40.0)
    # The group moves as a unit within 2×spread of each other: every
    # request should find the laptops in range.
    assert successes == 4
    positions = [n.position for n in nodes]
    for p in positions[1:]:
        assert distance(positions[0], p) <= 120.0  # still clustered


def test_energy_drain_visible_in_monitor():
    """Battery fraction of a busy helper decreases monotonically."""
    from repro.network.mobility import StaticPlacement

    nodes = [Node("me", NodeClass.PHONE), Node("lap", NodeClass.LAPTOP)]
    placement = StaticPlacement(
        100.0, 100.0, RngRegistry(4).stream("p"),
        positions={"me": (0, 0), "lap": (10, 0)},
    )
    system = AgentSystem(nodes, seed=4, mobility=placement, reliable_channel=True)
    lap = system.nodes["lap"]
    monitor = Monitor(system.engine, lambda: lap.battery_fraction, period=0.5)
    for i in range(3):
        service = workload.movie_playback_service(requester="me", name=f"e{i}")
        outcome = system.negotiate(service)
        assert outcome is not None
        release_coalition(outcome.coalition, system.providers, system.engine.now)
    monitor.stop()
    values = list(monitor.series.values)
    assert values[-1] < values[0]
    assert all(values[i + 1] <= values[i] + 1e-12 for i in range(len(values) - 1))

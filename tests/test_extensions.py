"""Unit tests for the extension features: leases, multi-hop, reputation,
battery-aware selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coalition import Coalition, TaskAward
from repro.core.negotiation import candidate_nodes, negotiate
from repro.core.operation import run_operation_phase
from repro.core.proposal import Proposal
from repro.core.reputation import ReputationTracker
from repro.core.selection import ScoredProposal, SelectionPolicy
from repro.network.channel import ChannelModel
from repro.network.messaging import NetworkService
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.capacity import Capacity
from repro.resources.manager import ResourceManager
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.services import workload
from repro.sim.engine import Engine


# -- reservation leases ------------------------------------------------------


def test_lease_expiry_and_reclaim():
    mgr = ResourceManager(Capacity.of(cpu=100.0))
    r = mgr.reserve("h", Capacity.of(cpu=40.0), now=0.0, ttl=10.0)
    assert not r.expired(9.9)
    assert r.expired(10.0)
    assert mgr.release_expired(5.0) == 0
    assert mgr.release_expired(10.0) == 1
    assert mgr.reserved.is_zero
    assert not r.live


def test_lease_renewal():
    mgr = ResourceManager(Capacity.of(cpu=100.0))
    r = mgr.reserve("h", Capacity.of(cpu=40.0), now=0.0, ttl=10.0)
    r.renew(until=100.0)
    assert mgr.release_expired(50.0) == 0
    assert r.live
    mgr.release(r)
    with pytest.raises(ValueError):
        r.renew(200.0)


def test_untimed_reservations_never_expire():
    mgr = ResourceManager(Capacity.of(cpu=100.0))
    mgr.reserve("h", Capacity.of(cpu=40.0))
    assert mgr.release_expired(1e12) == 0
    assert mgr.next_expiry() is None


def test_next_expiry_is_earliest():
    mgr = ResourceManager(Capacity.of(cpu=100.0))
    mgr.reserve("a", Capacity.of(cpu=10.0), now=0.0, ttl=30.0)
    mgr.reserve("b", Capacity.of(cpu=10.0), now=0.0, ttl=10.0)
    assert mgr.next_expiry() == 10.0


# -- multi-hop topology ------------------------------------------------------


def _chain():
    nodes = [Node(f"n{i}", position=(70.0 * i, 0.0)) for i in range(5)]
    return Topology(nodes, DiscRadio(range_m=100.0)), nodes


def test_khop_neighbors():
    topo, _ = _chain()
    assert set(topo.khop_neighbors("n0", 1)) == {"n1"}
    assert set(topo.khop_neighbors("n0", 2)) == {"n1", "n2"}
    assert set(topo.khop_neighbors("n0", 4)) == {"n1", "n2", "n3", "n4"}
    assert topo.khop_neighbors("n0", 0) == ()


def test_shortest_route_and_cost():
    topo, _ = _chain()
    assert topo.shortest_route("n0", "n0") == ("n0",)
    assert topo.shortest_route("n0", "n2") == ("n0", "n1", "n2")
    cost_1hop = topo.multihop_cost("n0", "n1")
    cost_2hop = topo.multihop_cost("n0", "n2")
    assert cost_2hop == pytest.approx(2 * cost_1hop)
    assert topo.multihop_cost("n0", "n0") == 0.0


def test_route_none_when_partitioned():
    topo, nodes = _chain()
    nodes[2].fail()
    topo.rebuild()
    assert topo.shortest_route("n0", "n4") is None
    assert topo.multihop_cost("n0", "n4") == float("inf")


def test_candidate_nodes_multihop():
    topo, _ = _chain()
    from repro.services.service import Service

    service = workload.surveillance_service(requester="n0")
    object.__setattr__(service, "requester", "n0")
    assert set(candidate_nodes(service, topo, max_hops=1)) == {"n0", "n1"}
    assert set(candidate_nodes(service, topo, max_hops=3)) == {"n0", "n1", "n2", "n3"}


def test_negotiate_multihop_reaches_far_laptop():
    """The only capable node is two hops away: 1-hop fails, 2-hop wins."""
    nodes = [
        Node("requester", NodeClass.PHONE, position=(0, 0)),
        Node("relay", NodeClass.PHONE, position=(80, 0)),
        Node("far-laptop", NodeClass.LAPTOP, position=(160, 0)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    service = workload.movie_playback_service(requester="requester")
    one_hop = negotiate(service, topology, providers, commit=False, max_hops=1)
    assert not one_hop.success
    two_hop = negotiate(service, topology, providers, commit=False, max_hops=2)
    assert two_hop.success
    assert "far-laptop" in two_hop.coalition.members


# -- routed messaging ------------------------------------------------------


def _routed_net():
    topo, nodes = _chain()
    eng = Engine(seed=3)
    channel = ChannelModel(topo, eng.rng.stream("c"), reliable=True, jitter=0.0)
    return NetworkService(eng, topo, channel), eng, topo, nodes


def test_send_routed_direct_falls_back_to_send():
    net, eng, topo, _ = _routed_net()
    got = []
    net.register("n1", lambda m, t: got.append(m))
    assert net.send_routed("n0", "n1", "X", None) is not None
    eng.run()
    assert len(got) == 1


def test_send_routed_multihop_delivery_and_latency():
    net, eng, topo, _ = _routed_net()
    got = []
    net.register("n3", lambda m, t: got.append((m, t)))
    net.send_routed("n0", "n3", "X", None, size_kb=10.0)
    direct = []
    net.register("n1", lambda m, t: direct.append((m, t)))
    net.send("n0", "n1", "X", None, size_kb=10.0)
    eng.run()
    assert len(got) == 1
    msg, t3 = got[0]
    assert msg.sender == "n0"  # original sender preserved end-to-end
    _, t1 = direct[0]
    assert t3 > t1  # three hops take longer than one


def test_send_routed_unroutable_lost():
    net, eng, topo, nodes = _routed_net()
    nodes[1].fail()
    topo.rebuild()
    assert net.send_routed("n0", "n4", "X", None) is None
    assert net.lost_count >= 1


def test_send_routed_counts_per_hop_transmissions():
    net, eng, topo, _ = _routed_net()
    net.register("n2", lambda m, t: None)
    before = net.sent_count
    net.send_routed("n0", "n2", "X", None)
    assert net.sent_count - before == 2  # two hops


# -- CFP relaying in the agent layer ---------------------------------------


def test_agent_relayed_cfp_reaches_two_hops():
    from repro.agents.system import AgentSystem
    from repro.network.mobility import StaticPlacement
    from repro.sim.rng import RngRegistry

    nodes = [
        Node("me", NodeClass.PHONE),
        Node("relay", NodeClass.PHONE),
        Node("far", NodeClass.LAPTOP),
    ]
    placement = StaticPlacement(
        300.0, 300.0, RngRegistry(1).stream("p"),
        positions={"me": (0, 0), "relay": (80, 0), "far": (160, 0)},
    )
    one_hop = AgentSystem(nodes, seed=1, mobility=placement,
                          reliable_channel=True, max_hops=1)
    service = workload.movie_playback_service(requester="me", name="m1")
    outcome = one_hop.negotiate(service)
    assert outcome is not None and not outcome.success

    nodes2 = [
        Node("me", NodeClass.PHONE),
        Node("relay", NodeClass.PHONE),
        Node("far", NodeClass.LAPTOP),
    ]
    two_hop = AgentSystem(nodes2, seed=1, mobility=placement,
                          reliable_channel=True, max_hops=2)
    service2 = workload.movie_playback_service(requester="me", name="m2")
    outcome2 = two_hop.negotiate(service2)
    assert outcome2 is not None and outcome2.success
    assert "far" in outcome2.coalition.members
    assert two_hop.provider_agents["relay"].cfps_relayed >= 1


def test_cfp_duplicates_deduped():
    """In a dense neighborhood a 2-hop flood produces duplicate copies;
    each provider must process a session once."""
    from repro.agents.system import AgentSystem
    from repro.network.mobility import StaticPlacement
    from repro.sim.rng import RngRegistry

    nodes = [Node("me", NodeClass.PDA)] + [
        Node(f"n{i}", NodeClass.LAPTOP) for i in range(4)
    ]
    placement = StaticPlacement(50.0, 50.0, RngRegistry(2).stream("p"))
    system = AgentSystem(nodes, seed=2, mobility=placement,
                         reliable_channel=True, max_hops=2)
    service = workload.surveillance_service(requester="me")
    outcome = system.negotiate(service)
    assert outcome is not None and outcome.success
    for agent in system.provider_agents.values():
        assert agent.cfps_seen <= 1


# -- reputation ----------------------------------------------------------------


def test_reputation_scores():
    t = ReputationTracker()
    assert t.score("x") == pytest.approx(0.5)  # unknown = neutral
    t.record_success("x")
    assert t.score("x") == pytest.approx(2 / 3)
    t.record_failure("x")
    assert t.score("x") == pytest.approx(0.5)
    t.record_failure("x")
    t.record_failure("x")
    assert t.score("x") < 0.5
    assert t.observations("x") == (1, 3)
    assert t.known_nodes() == ("x",)


def test_reputation_invalid_priors():
    with pytest.raises(ValueError):
        ReputationTracker(prior_successes=0)


def test_reputation_observe_operation_debits_rescued_crash(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(movie_service, topology, providers, commit=True)
    video_tid = movie_service.tasks[0].task_id
    victim = outcome.coalition.awards[video_tid].node_id
    engine = Engine(seed=5)
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine,
        failures=[(5.0, victim)],
    )
    assert report.dropped_awards  # the crash is recorded
    tracker = ReputationTracker()
    tracker.observe_operation(report, outcome.coalition)
    successes, failures = tracker.observations(victim)
    assert failures >= 1  # crash debited even though the task was rescued
    rescuer = report.outcomes[video_tid].node_id
    assert tracker.observations(rescuer)[0] >= 1


def test_selection_reputation_criterion():
    def scored(node, rep):
        return ScoredProposal(
            proposal=Proposal(task_id="t", node_id=node, values={}),
            distance=0.1, comm_cost=1.0, new_member=True, reputation=rep,
        )

    policy = SelectionPolicy(use_reputation=True)
    best = policy.select([scored("flaky", 0.2), scored("solid", 0.9)])
    assert best.proposal.node_id == "solid"
    # Without the flag, reputation is ignored entirely.
    off = SelectionPolicy()
    ranked_off = off.rank([scored("flaky", 0.2), scored("solid", 0.9)])
    ranked_off2 = off.rank([scored("flaky", 0.9), scored("solid", 0.2)])
    assert [s.proposal.node_id for s in ranked_off] == \
        [s.proposal.node_id for s in ranked_off2]


def test_selection_reputation_quantization_falls_through():
    def scored(node, rep, comm):
        return ScoredProposal(
            proposal=Proposal(task_id="t", node_id=node, values={}),
            distance=0.1, comm_cost=comm, new_member=True, reputation=rep,
        )

    policy = SelectionPolicy(use_reputation=True, reputation_resolution=0.1)
    # Reputations in the same bucket: comm cost decides.
    best = policy.select([scored("a", 0.81, 5.0), scored("b", 0.79, 1.0)])
    assert best.proposal.node_id == "b"


# -- battery-aware selection ------------------------------------------------


def test_selection_battery_criterion():
    def scored(node, battery, comm):
        return ScoredProposal(
            proposal=Proposal(task_id="t", node_id=node, values={}),
            distance=0.1, comm_cost=comm, new_member=True,
            battery_fraction=battery,
        )

    aware = SelectionPolicy(use_battery=True)
    # Battery outranks comm cost when enabled.
    best = aware.select([scored("full-far", 1.0, 9.0), scored("empty-near", 0.1, 0.1)])
    assert best.proposal.node_id == "full-far"
    # Same battery bucket: comm cost decides.
    best2 = aware.select([scored("a", 0.95, 9.0), scored("b", 0.92, 0.1)])
    assert best2.proposal.node_id == "b"
    # Disabled (paper default): comm wins.
    paper = SelectionPolicy()
    best3 = paper.select([scored("full-far", 1.0, 9.0), scored("empty-near", 0.1, 0.1)])
    assert best3.proposal.node_id == "empty-near"


def test_negotiate_battery_aware_prefers_charged_node(movie_service):
    drained = Node("drained", NodeClass.LAPTOP, position=(10, 0))
    drained.consume_energy(drained.battery * 0.9)
    fresh = Node("fresh", NodeClass.LAPTOP, position=(11, 0))
    requester = Node("requester", NodeClass.PHONE, position=(0, 0))
    topology = Topology([requester, drained, fresh], DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in [requester, drained, fresh]}
    outcome = negotiate(
        movie_service, topology, providers, commit=False,
        selection=SelectionPolicy(use_battery=True),
    )
    assert outcome.success
    assert outcome.coalition.members == {"fresh"}


def test_selection_resolution_validation():
    with pytest.raises(ValueError):
        SelectionPolicy(reputation_resolution=0.0)
    with pytest.raises(ValueError):
        SelectionPolicy(battery_resolution=-1.0)

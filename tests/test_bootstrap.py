"""Unit tests for repro.metrics.bootstrap (and its stats wiring)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.bootstrap import (
    BootstrapCI,
    bootstrap_ci,
    bootstrap_diff_ci,
    coverage,
    resample_indices,
)
from repro.metrics.stats import Summary, describe


# -- degenerate inputs: exact closed forms ---------------------------------


def test_constant_sample_gives_degenerate_interval():
    """Resampling a constant can only reproduce it: [mean, mean]."""
    ci = bootstrap_ci([3.5] * 12)
    assert (ci.lo, ci.hi, ci.mean) == (3.5, 3.5, 3.5)
    assert ci.half_width == 0.0
    assert ci.contains(3.5) and not ci.contains(3.5000001)


def test_single_observation_gives_degenerate_interval():
    ci = bootstrap_ci([7.0], method="bca")
    assert (ci.lo, ci.hi) == (7.0, 7.0)


def test_empty_sample_rejected():
    with pytest.raises(ValueError, match="empty"):
        bootstrap_ci([])


def test_parameter_validation():
    with pytest.raises(ValueError, match="method"):
        bootstrap_ci([1.0, 2.0], method="studentized")
    with pytest.raises(ValueError, match="alpha"):
        bootstrap_ci([1.0, 2.0], alpha=1.5)
    with pytest.raises(ValueError, match="n_resamples"):
        bootstrap_ci([1.0, 2.0], n_resamples=0)


# -- determinism -----------------------------------------------------------


def test_interval_is_pure_function_of_inputs():
    """Equal (samples, alpha, B, method, seed) → identical intervals,
    regardless of any ambient RNG state."""
    data = [1.0, 4.0, 2.0, 8.0, 5.0, 3.0]
    a = bootstrap_ci(data)
    np.random.seed(0)
    np.random.random(100)
    b = bootstrap_ci(data)
    assert a == b
    assert bootstrap_ci(data, seed=2) != a  # the seed really is used


def test_resample_indices_pure_and_shaped():
    a = resample_indices(8, 50, seed=3)
    b = resample_indices(8, 50, seed=3)
    assert a.shape == (50, 8)
    assert (a == b).all()
    assert a.min() >= 0 and a.max() < 8
    assert not (a == resample_indices(8, 50, seed=4)).all()


# -- statistical correctness ----------------------------------------------


@pytest.mark.parametrize("method", ["percentile", "bca"])
def test_gaussian_coverage(method):
    """Over 200 fixed-seed Gaussian datasets (n=25, μ=5, σ=2), the 95%
    interval with B=10000 covers the true mean at roughly its nominal
    rate. The bootstrap undercovers slightly at small n, so accept
    [0.87, 0.99] — far above what a broken interval could reach and
    below certain-coverage degenerate behavior."""
    truth = 5.0
    intervals = []
    for seed in range(200):
        data = np.random.default_rng(seed).normal(truth, 2.0, size=25)
        intervals.append(
            bootstrap_ci(data, n_resamples=10_000, method=method, seed=11)
        )
    rate = coverage(intervals, truth)
    assert 0.87 <= rate <= 0.99, rate


def test_interval_ordering_and_mean_inside():
    data = np.random.default_rng(1).exponential(2.0, size=40)
    for method in ("percentile", "bca"):
        ci = bootstrap_ci(data, method=method)
        assert ci.lo < ci.hi
        assert ci.contains(float(data.mean()))


def test_bca_shifts_toward_the_long_tail():
    """On right-skewed data BCa corrects the percentile interval toward
    the tail: its upper endpoint moves up."""
    data = np.random.default_rng(5).lognormal(0.0, 1.2, size=30)
    perc = bootstrap_ci(data, method="percentile")
    bca = bootstrap_ci(data, method="bca")
    assert bca.hi > perc.hi


def test_bca_survives_one_sided_resample_distribution():
    """Two distinct values heavily imbalanced: the below-fraction clamp
    keeps inv_cdf finite instead of crashing."""
    data = [0.0] * 29 + [1.0]
    ci = bootstrap_ci(data, method="bca")
    assert 0.0 <= ci.lo <= ci.hi <= 1.0


# -- paired difference (the perf gate primitive) ---------------------------


def test_diff_identical_samples_is_exactly_zero():
    data = [1.0, 2.0, 3.0]
    ci = bootstrap_diff_ci(data, data)
    assert (ci.lo, ci.hi, ci.mean) == (0.0, 0.0, 0.0)


def test_diff_constant_shift_is_degenerate_and_excludes_zero():
    old = [1.0, 2.0, 3.0, 4.0]
    new = [x + 0.25 for x in old]
    ci = bootstrap_diff_ci(old, new)
    assert (ci.lo, ci.hi) == (0.25, 0.25)
    assert not ci.contains(0.0)


def test_diff_mixed_sign_noise_straddles_zero():
    old = [1.0, 2.0, 3.0, 4.0, 5.0]
    new = [1.2, 1.9, 3.1, 3.8, 5.0]
    ci = bootstrap_diff_ci(old, new)
    assert ci.lo < 0.0 < ci.hi


def test_diff_requires_aligned_samples():
    with pytest.raises(ValueError, match="align"):
        bootstrap_diff_ci([1.0, 2.0], [1.0, 2.0, 3.0])


# -- helpers and wiring ----------------------------------------------------


def test_coverage_helper():
    inside = bootstrap_ci([1.0, 2.0, 3.0])
    outside = bootstrap_ci([10.0, 11.0, 12.0])
    assert coverage([inside, outside], 2.0) == 0.5
    with pytest.raises(ValueError):
        coverage([], 0.0)


def test_ci_to_dict_roundtrip_fields():
    ci = bootstrap_ci([1.0, 5.0, 3.0])
    d = ci.to_dict()
    assert d["lo"] == ci.lo and d["hi"] == ci.hi
    assert d["method"] == "percentile" and d["n_resamples"] == 2000
    assert "95%" in str(ci)


def test_describe_carries_samples_and_bootstrap_fields():
    s = describe([1.0, 2.0, 3.0, 4.0])
    assert s.samples == (1.0, 2.0, 3.0, 4.0)
    assert s.boot_lo is not None and s.boot_hi is not None
    assert s.boot_lo <= s.mean <= s.boot_hi
    assert s.bootstrap_interval() == (s.boot_lo, s.boot_hi)
    # Round-trip through the persistence dicts.
    assert Summary.from_dict(s.to_dict()) == s


def test_summary_loads_schema_v1_dicts():
    """Records persisted before the bootstrap fields still deserialize
    (and report a degenerate bootstrap interval)."""
    v1 = {
        "mean": 1.0, "std": 0.5, "ci_half_width": 0.2, "n": 8,
        "minimum": 0.1, "maximum": 1.9,
    }
    s = Summary.from_dict(v1)
    assert s.samples is None and s.boot_lo is None
    assert s.bootstrap_interval() == (1.0, 1.0)
    assert str(s) == "1.0000 ± 0.2000 (n=8)"

"""Unit tests for capacity vectors."""

from __future__ import annotations

import pytest

from repro.errors import ResourceError
from repro.resources.capacity import Capacity
from repro.resources.kinds import ResourceKind


def test_construction_and_get():
    c = Capacity({ResourceKind.CPU: 100.0, ResourceKind.MEMORY: 64.0})
    assert c.get(ResourceKind.CPU) == 100.0
    assert c.get(ResourceKind.NET_BANDWIDTH) == 0.0  # missing = zero


def test_of_constructor():
    c = Capacity.of(cpu=10, memory=20)
    assert c.get(ResourceKind.CPU) == 10.0
    assert c.get(ResourceKind.MEMORY) == 20.0
    with pytest.raises(ResourceError):
        Capacity.of(plutonium=1.0)


def test_zero_and_is_zero():
    assert Capacity.zero().is_zero
    assert not Capacity.of(cpu=1).is_zero
    # Zero components are dropped entirely.
    assert Capacity.of(cpu=0.0).is_zero


def test_negative_amount_rejected():
    with pytest.raises(ResourceError):
        Capacity.of(cpu=-1.0)


def test_bad_key_rejected():
    with pytest.raises(ResourceError):
        Capacity({"cpu": 1.0})  # type: ignore[dict-item]


def test_addition():
    a = Capacity.of(cpu=10, memory=5)
    b = Capacity.of(cpu=3, energy=7)
    c = a + b
    assert c.get(ResourceKind.CPU) == 13.0
    assert c.get(ResourceKind.MEMORY) == 5.0
    assert c.get(ResourceKind.ENERGY) == 7.0


def test_subtraction_and_underflow():
    a = Capacity.of(cpu=10)
    b = Capacity.of(cpu=4)
    assert (a - b).get(ResourceKind.CPU) == 6.0
    with pytest.raises(ResourceError):
        b - a


def test_minus_clamped_floors_at_zero():
    a = Capacity.of(cpu=3)
    b = Capacity.of(cpu=10, memory=1)
    out = a.minus_clamped(b)
    assert out.get(ResourceKind.CPU) == 0.0
    assert out.get(ResourceKind.MEMORY) == 0.0


def test_scaled():
    c = Capacity.of(cpu=10).scaled(2.5)
    assert c.get(ResourceKind.CPU) == 25.0
    assert Capacity.of(cpu=10).scaled(0.0).is_zero
    with pytest.raises(ResourceError):
        Capacity.of(cpu=1).scaled(-1.0)


def test_covers():
    cap = Capacity.of(cpu=10, memory=64)
    assert cap.covers(Capacity.of(cpu=10))
    assert cap.covers(Capacity.of(cpu=5, memory=64))
    assert not cap.covers(Capacity.of(cpu=11))
    assert not cap.covers(Capacity.of(energy=1))
    assert cap.covers(Capacity.zero())


def test_utilization_of():
    cap = Capacity.of(cpu=10, memory=100)
    assert cap.utilization_of(Capacity.of(cpu=5, memory=20)) == 0.5
    assert cap.utilization_of(Capacity.zero()) == 0.0
    assert cap.utilization_of(Capacity.of(energy=1)) == float("inf")


def test_equality_tolerance_and_hash():
    a = Capacity.of(cpu=1.0)
    b = Capacity.of(cpu=1.0 + 1e-12)
    assert a == b
    assert Capacity.of(cpu=1) != Capacity.of(cpu=2)
    assert hash(Capacity.of(cpu=1)) == hash(Capacity.of(cpu=1))


def test_kinds_and_total():
    c = Capacity.of(cpu=1, memory=2)
    assert set(c.kinds()) == {ResourceKind.CPU, ResourceKind.MEMORY}
    assert c.total() == 3.0

"""Unit tests for attributes, dimensions, dependencies, and QoSSpec."""

from __future__ import annotations

import pytest

from repro.errors import (
    DependencyError,
    DomainError,
    QoSSpecError,
    UnknownAttributeError,
    UnknownDimensionError,
)
from repro.qos.attribute import Attribute
from repro.qos.dependencies import Dependency, DependencySet
from repro.qos.dimension import QoSDimension
from repro.qos.domain import ContinuousDomain, DiscreteDomain
from repro.qos.spec import QoSSpec
from repro.qos.types import ValueType


def _attr(name, values=(3, 2, 1)):
    return Attribute(name, DiscreteDomain(ValueType.INTEGER, values))


# -- Attribute / QoSDimension ------------------------------------------------


def test_attribute_flags_and_validate():
    disc = _attr("a")
    cont = Attribute("b", ContinuousDomain(ValueType.INTEGER, 1, 10), unit="fps")
    assert disc.is_discrete and not disc.is_continuous
    assert cont.is_continuous and not cont.is_discrete
    assert cont.validate(5) == 5
    with pytest.raises(DomainError):
        disc.validate(9)
    assert "fps" in str(cont)


def test_dimension_validation():
    d = QoSDimension("V", ("x", "y"))
    assert "x" in d and len(d) == 2 and list(d) == ["x", "y"]
    with pytest.raises(QoSSpecError):
        QoSDimension("V", ())
    with pytest.raises(QoSSpecError):
        QoSDimension("V", ("x", "x"))


# -- Dependency / DependencySet ---------------------------------------------------


def test_dependency_applicability_and_satisfaction():
    dep = Dependency("d", ("a", "b"), lambda v: v["a"] <= v["b"])
    assert dep.applicable({"a": 1, "b": 2})
    assert not dep.applicable({"a": 1})
    assert dep.satisfied({"a": 1})  # inapplicable => satisfied
    assert dep.satisfied({"a": 1, "b": 2})
    assert not dep.satisfied({"a": 3, "b": 2})


def test_dependency_sees_only_declared_attributes():
    seen = {}

    def pred(v):
        seen.update(v)
        return True

    dep = Dependency("d", ("a",), pred)
    dep.satisfied({"a": 1, "z": 99})
    assert "z" not in seen


def test_dependency_rejects_empty_and_duplicates():
    with pytest.raises(DependencyError):
        Dependency("d", (), lambda v: True)
    with pytest.raises(DependencyError):
        Dependency("d", ("a", "a"), lambda v: True)


def test_dependency_set_operations():
    deps = DependencySet([
        Dependency("p", ("a", "b"), lambda v: v["a"] < v["b"]),
        Dependency("q", ("b",), lambda v: v["b"] > 0),
    ])
    assert len(deps) == 2 and bool(deps)
    assert {d.name for d in deps.mentioning("b")} == {"p", "q"}
    assert deps.satisfied({"a": 1, "b": 2})
    bad = deps.violated_by({"a": 5, "b": 2})
    assert [d.name for d in bad] == ["p"]
    with pytest.raises(DependencyError):
        deps.check({"a": 5, "b": 2})


def test_dependency_set_duplicate_names_rejected():
    with pytest.raises(DependencyError):
        DependencySet([
            Dependency("same", ("a",), lambda v: True),
            Dependency("same", ("b",), lambda v: True),
        ])


# -- QoSSpec ------------------------------------------------------------


def _spec(**kwargs):
    return QoSSpec(
        name="s",
        dimensions=(QoSDimension("V", ("x", "y")), QoSDimension("A", ("z",))),
        attributes=(_attr("x"), _attr("y"), _attr("z")),
        **kwargs,
    )


def test_spec_lookups():
    spec = _spec()
    assert spec.dimension("V").name == "V"
    assert spec.attribute("x").name == "x"
    assert spec.dimension_of("z").name == "A"
    assert spec.attribute_names == ("x", "y", "z")
    assert spec.dimension_names == ("V", "A")


def test_spec_unknown_lookups():
    spec = _spec()
    with pytest.raises(UnknownDimensionError):
        spec.dimension("nope")
    with pytest.raises(UnknownAttributeError):
        spec.attribute("nope")
    with pytest.raises(UnknownAttributeError):
        spec.dimension_of("nope")


def test_spec_requires_dimensions():
    with pytest.raises(QoSSpecError):
        QoSSpec("s", (), (_attr("x"),))


def test_spec_rejects_unknown_attribute_in_dimension():
    with pytest.raises(QoSSpecError):
        QoSSpec("s", (QoSDimension("V", ("ghost",)),), (_attr("x"),))


def test_spec_rejects_attribute_in_two_dimensions():
    with pytest.raises(QoSSpecError):
        QoSSpec(
            "s",
            (QoSDimension("V", ("x",)), QoSDimension("A", ("x",))),
            (_attr("x"),),
        )


def test_spec_rejects_orphan_attributes():
    with pytest.raises(QoSSpecError):
        QoSSpec("s", (QoSDimension("V", ("x",)),), (_attr("x"), _attr("orphan")))


def test_spec_rejects_duplicate_names():
    with pytest.raises(QoSSpecError):
        QoSSpec(
            "s",
            (QoSDimension("V", ("x",)), QoSDimension("V", ("y",))),
            (_attr("x"), _attr("y")),
        )
    with pytest.raises(QoSSpecError):
        QoSSpec("s", (QoSDimension("V", ("x", "y")),), (_attr("x"), _attr("x")))


def test_spec_rejects_dependency_on_unknown_attribute():
    with pytest.raises(QoSSpecError):
        _spec(dependencies=DependencySet([
            Dependency("d", ("ghost",), lambda v: True)
        ]))


def test_validate_assignment_complete_and_coerced():
    spec = _spec()
    out = spec.validate_assignment({"x": 3, "y": 2, "z": 1})
    assert out == {"x": 3, "y": 2, "z": 1}


def test_validate_assignment_missing_attribute():
    spec = _spec()
    with pytest.raises(QoSSpecError):
        spec.validate_assignment({"x": 3, "y": 2})


def test_validate_assignment_out_of_domain():
    spec = _spec()
    with pytest.raises(DomainError):
        spec.validate_assignment({"x": 9, "y": 2, "z": 1})


def test_validate_assignment_checks_dependencies():
    spec = _spec(dependencies=DependencySet([
        Dependency("x<=y", ("x", "y"), lambda v: v["x"] <= v["y"]),
    ]))
    spec.validate_assignment({"x": 1, "y": 2, "z": 1})
    with pytest.raises(DependencyError):
        spec.validate_assignment({"x": 3, "y": 1, "z": 1})


def test_validate_partial_allows_missing():
    spec = _spec()
    assert spec.validate_partial({"x": 3}) == {"x": 3}

"""The repro.shard subsystem: partitioning, gateways, delta rebuilds,
shared tables, and the shard-vs-unsharded bit-identity pin.

The headline contract: on a 1 × 1 grid (which :meth:`ShardGrid.auto`
produces for every historical scenario scale) the sharded runner is
**bit-identical** to :func:`repro.workloads.run_contention` — same
sessions, same metrics, in both admission-only (E15) and streaming
(E20) modes. Everything else here exercises what sharding adds: gateway
election and cross-shard routing, cell migration under mobility, the
delta-rebuild fast path, the per-epoch cache caps, and the
shared-memory fleet tables.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.network.topology as topology_mod
from repro import features
from repro.errors import NotConnectedError, UnknownNodeError
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.node import Node
from repro.shard import (
    ShardedCluster,
    ShardGrid,
    fleet_from_tables,
    fleet_tables,
    run_sharded_contention,
)
from repro.shard import sharedmem
from repro.shard.driver import _seeded_fleet
from repro.sim.rng import RngRegistry
from repro.sim.sequences import reset_all_sequences
from repro.workloads.contention import run_contention
from repro.workloads.registry import get_scenario


# ==========================================================================
# ShardGrid: cell arithmetic and backhaul paths
# ==========================================================================


class TestShardGrid:
    def test_auto_is_single_cell_at_historical_scales(self):
        # contention-mix / streaming-mix geometry: area ~ one radio range.
        grid = ShardGrid.auto(130.0, 110.0, 20)
        assert (grid.gx, grid.gy) == (1, 1)
        # Even a big fleet in a tiny area stays unsharded (cells must be
        # at least one radio range wide).
        assert ShardGrid.auto(150.0, 100.0, 4096).n_shards == 1

    def test_auto_tracks_occupancy_at_scale(self):
        assert ShardGrid.auto(60.0 * np.sqrt(512), 100.0, 512).n_shards == 4
        assert ShardGrid.auto(60.0 * np.sqrt(4096), 100.0, 4096).n_shards == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardGrid(width=0.0, height=100.0, gx=1, gy=1)
        with pytest.raises(ValueError):
            ShardGrid(width=100.0, height=100.0, gx=0, gy=1)
        with pytest.raises(ValueError):
            ShardGrid.auto(100.0, 100.0, 10, target_occupancy=0)

    def test_cell_arithmetic_round_trip(self):
        grid = ShardGrid(width=200.0, height=100.0, gx=4, gy=2)
        for shard in range(grid.n_shards):
            cx, cy = grid.cell_index(shard)
            assert grid.shard_of(*grid.cell_center(shard)) == shard
            assert (cx, cy) == grid.cell_index(shard)
        # Positions on/beyond the boundary clamp into the grid.
        assert grid.cell_of(-5.0, -5.0) == (0, 0)
        assert grid.cell_of(200.0, 100.0) == (3, 1)
        with pytest.raises(IndexError):
            grid.cell_index(grid.n_shards)

    def test_hops_and_grid_path(self):
        grid = ShardGrid(width=300.0, height=300.0, gx=3, gy=3)
        a = grid.shard_of(10.0, 10.0)       # cell (0, 0)
        b = grid.shard_of(290.0, 290.0)     # cell (2, 2)
        assert grid.hops(a, a) == 0
        assert grid.hops(a, b) == 4
        # x-first L-shaped walk: (0,0) -> (1,0) -> (2,0) -> (2,1) -> (2,2)
        assert grid.grid_path(a, b) == (0, 1, 2, 5, 8)
        assert grid.grid_path(b, a) == (8, 7, 6, 3, 0)
        # Every consecutive pair on the walk is a mesh edge.
        path = grid.grid_path(a, b)
        for u, v in zip(path, path[1:]):
            assert v in grid.neighbors_of(u)

    def test_neighbors_of_corner_and_center(self):
        grid = ShardGrid(width=300.0, height=300.0, gx=3, gy=3)
        assert set(grid.neighbors_of(0)) == {1, 3}
        assert set(grid.neighbors_of(4)) == {1, 3, 5, 7}


# ==========================================================================
# Bit-identity: 1-shard == unsharded (E15 / E20 scenarios, 16–64 nodes)
# ==========================================================================


def _identity_configs():
    for scenario in ("contention-mix", "streaming-mix"):
        base = get_scenario(scenario).replace(horizon=120.0)
        cfg = base.contention_config()
        yield f"{scenario}-{cfg.n_nodes}n", cfg
        yield f"{scenario}-64n", cfg.replace(n_nodes=64)


@pytest.mark.parametrize(
    "label, config", list(_identity_configs()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_sharded_bit_identical_to_unsharded(label, config):
    """ShardGrid.auto is 1 x 1 at these scales, and the sharded runner
    consumes the RNG streams exactly like the unsharded one — so the
    session lists and metric dicts must match bit for bit, in both
    admission-only (contention-mix) and streaming (streaming-mix) mode."""
    assert ShardGrid.auto(config.area, config.radio_range, config.n_nodes).n_shards == 1
    for seed in (1, 2, 3):
        reset_all_sequences()
        plain = run_contention(seed, config)
        reset_all_sequences()
        sharded = run_sharded_contention(seed, config)
        assert plain.sessions == sharded.sessions, (label, seed)
        assert plain.metrics() == sharded.metrics(), (label, seed)


def test_sharded_run_with_tables_bit_identical():
    """Precomputed fleet tables change who derives the fleet, never the
    result."""
    config = get_scenario("streaming-mix").replace(horizon=120.0).contention_config()
    reset_all_sequences()
    live = run_sharded_contention(5, config)
    reset_all_sequences()
    tabled = run_sharded_contention(5, config, tables=fleet_tables(5, config))
    assert live.sessions == tabled.sessions


# ==========================================================================
# Feature switch
# ==========================================================================


class TestFeatureSwitch:
    def test_registered_and_described(self):
        assert "shard" in features.FEATURES
        assert features.is_enabled("shard")
        assert "shard" in features.describe()
        assert "shard" in features.snapshot()

    def test_off_collapses_to_one_shard(self):
        nodes = [
            Node(f"n{i}", position=(25.0 + 50.0 * i, 50.0)) for i in range(4)
        ]
        grid = ShardGrid(width=200.0, height=100.0, gx=2, gy=1)
        with features.override("shard", False):
            cluster = ShardedCluster(nodes, DiscRadio(range_m=100.0), grid)
        assert cluster.n_shards == 1
        assert not cluster.sharded
        assert {cluster.home_shard(n.node_id) for n in nodes} == {0}
        # Snapshot semantics: flipping back on does not re-shard it.
        assert cluster.n_shards == 1
        on = ShardedCluster(nodes, DiscRadio(range_m=100.0), grid)
        assert on.n_shards == 2


# ==========================================================================
# Gateways and cross-shard routing
# ==========================================================================


def _two_cell_cluster():
    """Two 100 x 100 cells side by side; each holds a far node and a
    near-center gateway candidate, all within radio range intra-cell."""
    nodes = [
        Node("a", position=(10.0, 50.0)),
        Node("g0", position=(45.0, 50.0)),
        Node("b", position=(190.0, 50.0)),
        Node("g1", position=(155.0, 50.0)),
    ]
    grid = ShardGrid(width=200.0, height=100.0, gx=2, gy=1)
    cluster = ShardedCluster(nodes, DiscRadio(range_m=100.0), grid)
    return cluster, {n.node_id: n for n in nodes}


class TestGatewayRouting:
    def test_election_nearest_to_cell_center(self):
        cluster, _ = _two_cell_cluster()
        assert cluster.gateway(0) == "g0"
        assert cluster.gateway(1) == "g1"

    def test_election_tie_breaks_by_node_id(self):
        nodes = [
            Node("z", position=(40.0, 50.0)),
            Node("q", position=(60.0, 50.0)),  # same distance to (50, 50)
        ]
        grid = ShardGrid(width=100.0, height=100.0, gx=1, gy=1)
        cluster = ShardedCluster(nodes, DiscRadio(range_m=100.0), grid)
        assert cluster.gateway(0) == "q"

    def test_cross_shard_has_no_direct_link(self):
        cluster, _ = _two_cell_cluster()
        assert not cluster.connected("a", "b")
        assert cluster.edge_quality("a", "b") is None
        for query in (
            cluster.communication_cost,
            cluster.link_bandwidth,
            cluster.link_loss,
        ):
            with pytest.raises(NotConnectedError):
                query("a", "b")
        # Intra-shard stays on the arena fast path.
        assert cluster.connected("a", "g0")
        assert cluster.communication_cost("a", "g0") < float("inf")

    def test_cross_shard_cost_decomposes(self):
        cluster, _ = _two_cell_cluster()
        leg_a = cluster.shards[0].multihop_cost("a", "g0")
        leg_b = cluster.shards[1].multihop_cost("g1", "b")
        backhaul = cluster.grid.hops(0, 1) * cluster.backhaul_hop_cost
        assert cluster.multihop_cost("a", "b") == leg_a + backhaul + leg_b
        # The default backhaul hop is priced like a best-case radio hop.
        assert cluster.backhaul_hop_cost == pytest.approx(
            1000.0 / DiscRadio().nominal_bandwidth
        )

    def test_cross_shard_route_stitches_gateways(self):
        cluster, _ = _two_cell_cluster()
        assert cluster.shortest_route("a", "b") == ("a", "g0", "g1", "b")
        # A gateway endpoint appears once, not twice.
        assert cluster.shortest_route("g0", "b") == ("g0", "g1", "b")

    def test_dead_gateway_reelected(self):
        cluster, nodes = _two_cell_cluster()
        assert cluster.gateway(0) == "g0"
        nodes["g0"].fail()
        cluster.rebuild()  # the driver's post-churn rebuild
        assert cluster.gateway(0) == "a"
        assert cluster.shortest_route("a", "b") == ("a", "g1", "b")

    def test_shard_without_live_nodes_is_unreachable(self):
        cluster, nodes = _two_cell_cluster()
        nodes["a"].fail()
        nodes["g0"].fail()
        cluster.rebuild()
        assert cluster.gateway(0) is None
        assert cluster.multihop_cost("b", "a") == float("inf")
        assert cluster.shortest_route("b", "a") is None

    def test_liveness_churn_marks_only_home_shard_dirty(self):
        cluster, nodes = _two_cell_cluster()
        nodes["g1"].fail()
        assert cluster._dirty == {1}
        epochs = [shard.epoch for shard in cluster.shards]
        cluster.rebuild()
        assert cluster._dirty == set()
        # Only the victim's shard was rebuilt.
        assert cluster.shards[0].epoch == epochs[0]
        assert cluster.shards[1].epoch > epochs[1]

    def test_unknown_node_raises(self):
        cluster, _ = _two_cell_cluster()
        with pytest.raises(UnknownNodeError):
            cluster.home_shard("ghost")
        with pytest.raises(UnknownNodeError):
            cluster.node("ghost")


# ==========================================================================
# Mobility: migration across cells and the delta path
# ==========================================================================


class _ScriptedMobility:
    """Deterministic mobility stub: apply a fixed dict of moves once."""

    def __init__(self, moves):
        self.moves = dict(moves)

    def advance(self, nodes, dt):
        for node in nodes:
            if node.node_id in self.moves:
                node.move_to(*self.moves.pop(node.node_id))


class TestAdvanceMobility:
    def test_migration_re_homes_across_the_boundary(self):
        cluster, nodes = _two_cell_cluster()
        all_nodes = list(nodes.values())
        assert cluster.home_shard("g0") == 0
        mobility = _ScriptedMobility({"g0": (120.0, 50.0)})
        cluster.advance_mobility(mobility, all_nodes, 1.0)
        assert cluster.home_shard("g0") == 1
        assert "g0" in cluster.shards[1].node_ids
        assert "g0" not in cluster.shards[0].node_ids
        # Facade queries stay consistent mid-simulation: the migrant now
        # negotiates in its new cell and is cross-shard from its old one.
        assert "b" in cluster.shards[1].neighbors("g0")
        assert not cluster.connected("a", "g0")
        # Gateways re-elect from the post-migration membership.
        assert cluster.gateway(0) == "a"
        assert cluster.gateway(1) == "g1"

    def test_in_cell_movers_match_full_rebuild(self):
        cluster, nodes = _two_cell_cluster()
        all_nodes = list(nodes.values())
        mobility = _ScriptedMobility({"a": (20.0, 60.0), "b": (180.0, 40.0)})
        cluster.advance_mobility(mobility, all_nodes, 1.0)
        for shard in cluster.shards:
            dist, adj = shard._dist.copy(), shard._adj.copy()
            shard.rebuild()
            assert np.array_equal(dist, shard._dist, equal_nan=True)
            assert np.array_equal(adj, shard._adj)


class TestUpdatePositions:
    def _topology(self, n=32, seed=3):
        rng = np.random.default_rng(seed)
        nodes = [
            Node(f"n{i}", position=(float(rng.uniform(0, 300)),
                                    float(rng.uniform(0, 300))))
            for i in range(n)
        ]
        return Topology(nodes, DiscRadio(range_m=100.0))

    def test_delta_equals_full_rebuild(self):
        topo = self._topology()
        movers = ["n0", "n5", "n31"]
        for nid in movers:
            x, y = topo.node(nid).position
            topo.node(nid).move_to(x + 40.0, y - 25.0)
        topo.update_positions(movers)
        arrays = (topo._dist.copy(), topo._adj.copy(),
                  topo._bw.copy(), topo._loss.copy())
        routes_delta = topo.shortest_route("n0", "n31")
        topo.rebuild()
        assert np.array_equal(arrays[0], topo._dist, equal_nan=True)
        assert np.array_equal(arrays[1], topo._adj)
        assert np.array_equal(arrays[2], topo._bw, equal_nan=True)
        assert np.array_equal(arrays[3], topo._loss, equal_nan=True)
        assert routes_delta == topo.shortest_route("n0", "n31")

    def test_empty_move_set_still_bumps_epoch(self):
        topo = self._topology()
        before = topo.epoch
        topo.update_positions([])
        assert topo.epoch > before

    def test_falls_back_after_membership_churn(self):
        topo = self._topology()
        topo.remove_node("n1")
        topo.node("n2").move_to(10.0, 10.0)
        topo.update_positions(["n2"])  # arena stale -> full rebuild
        assert "n1" not in topo._arena_ids
        reference = self._topology()
        reference.remove_node("n1")
        reference.node("n2").move_to(10.0, 10.0)
        reference.rebuild()
        assert topo._arena_ids == reference._arena_ids
        assert np.array_equal(topo._adj, reference._adj)

    def test_falls_back_after_death(self):
        topo = self._topology()
        topo.node("n3").fail()
        topo.node("n2").move_to(10.0, 10.0)
        topo.update_positions(["n2"])  # alive set changed -> full rebuild
        assert "n3" not in topo._arena_ids


# ==========================================================================
# Per-epoch cache caps
# ==========================================================================


class TestCacheCaps:
    def test_route_cache_respects_cap(self, monkeypatch):
        monkeypatch.setattr(topology_mod, "ROUTE_CACHE_MAX", 4)
        topo = TestUpdatePositions()._topology(n=16)
        ids = topo.node_ids
        expected = {}
        for a in ids[:6]:
            for b in ids[6:12]:
                expected[(a, b)] = topo.shortest_route(a, b)
        assert len(topo._routes) <= 4
        assert len(topo._route_costs) <= 4
        # Evicted entries recompute to the same answer.
        for (a, b), route in expected.items():
            assert topo.shortest_route(a, b) == route

    def test_bfs_cache_respects_cap(self, monkeypatch):
        monkeypatch.setattr(topology_mod, "BFS_CACHE_MAX", 3)
        topo = TestUpdatePositions()._topology(n=16)
        khop = {nid: topo.khop_neighbors(nid, 2) for nid in topo.node_ids}
        assert len(topo._bfs) <= 3
        for nid, expected in khop.items():
            assert topo.khop_neighbors(nid, 2) == expected


# ==========================================================================
# Shared tables
# ==========================================================================


class TestSharedMem:
    def _tables(self):
        return {
            "classes": np.arange(8, dtype=np.int8),
            "positions": np.arange(16, dtype=np.float64).reshape(8, 2),
        }

    @pytest.mark.parametrize("backend", ["shm", "fork"])
    def test_publish_attach_round_trip(self, backend):
        name = f"test-roundtrip-{backend}"
        try:
            if backend == "shm" and sharedmem._shm is None:
                pytest.skip("no shared_memory support")
            bundle = sharedmem.publish(name, self._tables(), backend=backend)
            assert bundle.backend == backend
            attached = sharedmem.attach(name)
            assert attached.keys() == ("classes", "positions")
            for key, original in self._tables().items():
                np.testing.assert_array_equal(attached[key], original)
                with pytest.raises(ValueError):
                    attached[key][0] = 0  # read-only views
            assert name in sharedmem.published()
        finally:
            sharedmem.release(name)
        assert name not in sharedmem.published()
        with pytest.raises(KeyError):
            sharedmem.attach(name)

    def test_republish_replaces(self):
        name = "test-republish"
        try:
            sharedmem.publish(name, {"x": np.zeros(4)})
            sharedmem.publish(name, {"x": np.ones(4)})
            np.testing.assert_array_equal(sharedmem.attach(name)["x"], np.ones(4))
        finally:
            sharedmem.release(name)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            sharedmem.publish("test-bad", {}, backend="magic")


class TestFleetTables:
    def test_tables_reproduce_the_live_fleet(self):
        config = get_scenario("contention-mix").contention_config()
        tables = fleet_tables(9, config)
        rebuilt = fleet_from_tables(
            config, tables["classes"], tables["positions"]
        )
        live = _seeded_fleet(RngRegistry(9), config)
        assert [n.node_id for n in rebuilt] == [n.node_id for n in live]
        assert [n.node_class for n in rebuilt] == [n.node_class for n in live]
        assert [n.position for n in rebuilt] == [n.position for n in live]

    def test_shape_mismatch_rejected(self):
        config = get_scenario("contention-mix").contention_config()
        tables = fleet_tables(9, config)
        with pytest.raises(ValueError):
            fleet_from_tables(
                config.replace(n_nodes=config.n_nodes + 1),
                tables["classes"], tables["positions"],
            )


# ==========================================================================
# Multi-shard runs stay healthy (structural sanity, not bit-identity)
# ==========================================================================


def test_multi_shard_run_partitions_and_serves():
    config = get_scenario("contention-mix").replace(horizon=120.0).contention_config()
    config = config.replace(n_nodes=64, area=480.0, radio_range=100.0)
    grid = ShardGrid(width=480.0, height=480.0, gx=2, gy=2)
    reset_all_sequences()
    result = run_sharded_contention(2, config, grid=grid)
    assert result.offered() > 0
    # And the cluster itself spreads the fleet over several shards.
    nodes = _seeded_fleet(RngRegistry(2), config)
    cluster = ShardedCluster(nodes, DiscRadio(range_m=100.0), grid)
    occupied = {cluster.home_shard(n.node_id) for n in nodes}
    assert len(occupied) > 1

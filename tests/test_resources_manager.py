"""Unit tests for Resource Managers (admission + accounting invariant)."""

from __future__ import annotations

import pytest

from repro.errors import CapacityExceededError, UnknownReservationError
from repro.resources.capacity import Capacity
from repro.resources.kinds import ResourceKind
from repro.resources.manager import ResourceManager


def _mgr(cpu=100.0, memory=64.0):
    return ResourceManager(Capacity.of(cpu=cpu, memory=memory), name="t")


def test_initial_state():
    m = _mgr()
    assert m.reserved.is_zero
    assert m.available == m.capacity
    assert m.utilization() == 0.0
    assert m.live_reservations == ()


def test_reserve_and_release_roundtrip():
    m = _mgr()
    r = m.reserve("taskA", Capacity.of(cpu=30), now=1.0)
    assert r.live and r.granted_at == 1.0
    assert m.reserved.get(ResourceKind.CPU) == 30.0
    assert m.available.get(ResourceKind.CPU) == 70.0
    m.release(r, now=2.0)
    assert not r.live and r.released_at == 2.0
    assert m.reserved.is_zero
    assert m.available == m.capacity


def test_invariant_reserved_plus_available_equals_capacity():
    m = _mgr()
    m.reserve("a", Capacity.of(cpu=10, memory=8))
    m.reserve("b", Capacity.of(cpu=25))
    assert m.reserved + m.available == m.capacity


def test_over_admission_rejected_atomically():
    m = _mgr(cpu=50)
    m.reserve("a", Capacity.of(cpu=40))
    before = m.reserved
    with pytest.raises(CapacityExceededError):
        m.reserve("b", Capacity.of(cpu=20, memory=1))
    assert m.reserved == before  # all-or-nothing


def test_try_reserve_returns_none():
    m = _mgr(cpu=10)
    assert m.try_reserve("a", Capacity.of(cpu=20)) is None
    assert m.try_reserve("a", Capacity.of(cpu=5)) is not None


def test_exact_fit_admitted():
    m = _mgr(cpu=50)
    m.reserve("a", Capacity.of(cpu=50))
    assert m.utilization() == pytest.approx(1.0)
    assert not m.can_admit(Capacity.of(cpu=0.001))
    assert m.can_admit(Capacity.zero())


def test_double_release_rejected():
    m = _mgr()
    r = m.reserve("a", Capacity.of(cpu=1))
    m.release(r)
    with pytest.raises(UnknownReservationError):
        m.release(r)


def test_release_foreign_reservation_rejected():
    m1, m2 = _mgr(), _mgr()
    r = m1.reserve("a", Capacity.of(cpu=1))
    with pytest.raises(UnknownReservationError):
        m2.release(r)


def test_release_holder_bulk():
    m = _mgr()
    m.reserve("svc:t1", Capacity.of(cpu=10))
    m.reserve("svc:t1", Capacity.of(cpu=5))
    m.reserve("other", Capacity.of(cpu=1))
    assert m.release_holder("svc:t1") == 2
    assert m.reserved.get(ResourceKind.CPU) == 1.0
    assert m.release_holder("nobody") == 0


def test_utilization_is_bottleneck():
    m = _mgr(cpu=100, memory=100)
    m.reserve("a", Capacity.of(cpu=90, memory=10))
    assert m.utilization() == pytest.approx(0.9)


def test_many_reservations_under_churn():
    """Accounting stays exact through interleaved reserve/release."""
    m = _mgr(cpu=1000)
    live = []
    for i in range(100):
        live.append(m.reserve(f"h{i}", Capacity.of(cpu=7)))
        if i % 3 == 0:
            m.release(live.pop(0))
    expected = 7.0 * len(live)
    assert m.reserved.get(ResourceKind.CPU) == pytest.approx(expected)
    for r in live:
        m.release(r)
    assert m.reserved.is_zero

"""Tests for the shared work-queue scheduler (sweep-point parallelism)."""

from __future__ import annotations

import multiprocessing as mp
import time

import pytest

#: Pool-behavior tests need real workers; without ``fork`` the scheduler
#: deliberately degrades to serial execution (same results, one worker).
requires_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="platform has no fork start method; scheduler runs serially",
)

from repro.experiments.config import SweepConfig
from repro.experiments.parallel import (
    Scheduler,
    available_jobs,
    resolve_jobs,
    run_batch,
    run_suite,
)
from repro.experiments.plan import SuitePlan, SweepPoint, run_plan
from repro.experiments.reporting import Table
from repro.experiments.store import ResultsStore
from repro.experiments.suites import ALL_SUITES, SUITE_PLANS
from repro.sim.rng import RngRegistry


def _point_run(offset: float, delay: float = 0.0):
    """A suite-style replication: all randomness from the seed."""

    def run(seed: int, offset=offset, delay=delay) -> dict:
        if delay:
            time.sleep(delay)
        rng = RngRegistry(seed).stream("sched")
        return {"draw": float(rng.random()) + offset, "seed": float(seed)}

    return run


def _toy_plan(n_points: int = 3, delay: float = 0.0) -> SuitePlan:
    table = Table("toy", ["point", "draw", "seed"])
    points = [
        SweepPoint(label=i, run=_point_run(10.0 * i, delay), keys=("draw", "seed"))
        for i in range(n_points)
    ]
    return SuitePlan("TOY", table, points)


def _units(plan: SuitePlan, seeds) -> list:
    return plan.work_units(seeds)


# -- work-unit enumeration -----------------------------------------------------


def test_work_units_enumerate_point_major_seed_minor():
    units = _units(_toy_plan(2), (7, 9))
    assert [(u.index, u.point_index, u.seed_index, u.seed) for u in units] == [
        (0, 0, 0, 7), (1, 0, 1, 9), (2, 1, 0, 7), (3, 1, 1, 9),
    ]
    assert all(u.suite == "TOY" for u in units)


def test_scheduler_rejects_misnumbered_units():
    units = _units(_toy_plan(1), (1, 2))
    bad = [units[1], units[0]]  # positions no longer match indices
    with pytest.raises(ValueError, match="indices must match positions"):
        Scheduler(bad)


# -- out-of-order completion ---------------------------------------------------


@requires_fork
def test_out_of_order_completion_is_bit_identical_to_serial():
    """Early units sleep, late units don't: completion order inverts the
    submission order, yet the reduced table equals the serial one."""
    seeds = (1, 2, 3)

    def build(delayed: bool) -> SuitePlan:
        table = Table("toy", ["point", "draw", "seed"])
        points = []
        for i in range(3):
            # Point 0 is slowest, point 2 fastest → later sweep points
            # finish first under the pool.
            delay = (0.15 * (3 - i)) if delayed else 0.0
            points.append(SweepPoint(
                label=i, run=_point_run(10.0 * i, delay), keys=("draw", "seed"),
            ))
        return SuitePlan("TOY", table, points)

    serial_plan = build(delayed=False)
    serial_rows = Scheduler(_units(serial_plan, seeds), jobs=1).run()
    serial_table = serial_plan.reduce(
        dict(enumerate(serial_rows)), _units(serial_plan, seeds), seeds
    )

    pool_plan = build(delayed=True)
    units = _units(pool_plan, seeds)
    scheduler = Scheduler(units, jobs=4)
    rows = scheduler.run()
    pool_table = pool_plan.reduce(dict(enumerate(rows)), units, seeds)

    # Sleeps only slow execution down; they never change the values, so
    # the delayed pool table must equal the undelayed serial table.
    assert pool_table == serial_table
    # The pool really did complete units out of submission order (the
    # reduce step is what restores determinism, not lucky scheduling):
    # completion times are not monotone in unit index.
    finished = scheduler.completed_at
    by_completion = sorted(range(len(units)), key=finished.__getitem__)
    assert by_completion != sorted(by_completion)


@requires_fork
def test_scheduler_spreads_points_across_workers():
    """With jobs > seeds-per-point, workers must take units from several
    sweep points concurrently — the PR 1 pool could never do this."""
    seeds = (1, 2)  # 2 seeds per point
    plan = _toy_plan(n_points=4, delay=0.2)
    units = _units(plan, seeds)
    scheduler = Scheduler(units, jobs=8)  # 8 units → 8 workers
    scheduler.run()

    workers_used = set(scheduler.worker_of.values())
    # More workers active than one point has seeds → points ran concurrently.
    assert len(workers_used) > len(seeds)
    points_by_worker_wave = {
        scheduler.worker_of[u.index]: u.point_index for u in units
    }
    assert len(set(points_by_worker_wave.values())) > 1


def test_scheduler_propagates_earliest_unit_failure():
    seeds = (1, 2, 3)
    table = Table("toy", ["point", "x"])

    def boom(seed: int) -> dict:
        if seed >= 2:
            raise RuntimeError(f"seed {seed} exploded")
        return {"x": float(seed)}

    plan = SuitePlan("TOY", table, [SweepPoint(0, boom, ("x",))])
    with pytest.raises(RuntimeError, match="seed 2 exploded"):
        Scheduler(_units(plan, seeds), jobs=3).run()


@requires_fork
def test_scheduler_fails_fast_cancelling_pending_units():
    """After the first failure the pool stops dispatching: most of the
    queue never executes, instead of burning the whole batch."""
    def boom(seed: int) -> dict:
        if seed == 1:
            raise RuntimeError("early boom")
        # Long enough that 4 workers cannot drain the whole queue before
        # the parent reacts to the failure, even on a loaded CI box —
        # the cancel path is what makes the test finish fast.
        time.sleep(0.25)
        return {"x": float(seed)}

    table = Table("toy", ["point", "x"])
    plan = SuitePlan("TOY", table, [SweepPoint(0, boom, ("x",))])
    scheduler = Scheduler(plan.work_units(range(1, 41)), jobs=4)
    with pytest.raises(RuntimeError, match="early boom"):
        scheduler.run()
    assert len(scheduler.completed_at) < 40


def test_scheduler_empty_units():
    assert Scheduler([], jobs=4).run() == []


# -- resolve_jobs clamping -----------------------------------------------------


def test_resolve_jobs_clamps_to_pending_units():
    assert resolve_jobs(16, pending=3) == 3
    assert resolve_jobs(None, pending=2) == min(available_jobs(), 2)
    assert resolve_jobs(0, pending=1) == 1
    assert resolve_jobs(2, pending=0) == 1  # floor: never zero workers
    assert resolve_jobs(2, pending=100) == 2
    # Without a pending count the PR 1 semantics are unchanged.
    assert resolve_jobs(None) == available_jobs()
    assert resolve_jobs(4) == 4


def test_quick_run_does_not_fork_idle_workers():
    """A tiny --quick batch resolves fewer workers than requested."""
    sweep = SweepConfig(seeds=(1,), quick=True, jobs=16)
    plan = SUITE_PLANS["E2"](sweep)
    units = plan.work_units(sweep.effective_seeds)
    scheduler = Scheduler(units, jobs=16)
    assert scheduler.jobs == len(units) < 16


# -- full-batch determinism ----------------------------------------------------


def test_batch_with_jobs_above_seed_count_is_bit_identical():
    """A multi-suite batch with jobs > seeds-per-point reduces to the
    same BENCH summaries as a serial run (the ISSUE's acceptance bar)."""
    names = ["E2", "E9"]
    serial = run_batch(names, SweepConfig(seeds=(1, 2), quick=True, jobs=1))
    parallel = run_batch(names, SweepConfig(seeds=(1, 2), quick=True, jobs=4))
    assert [r.suite for r in parallel] == names
    for a, b in zip(serial, parallel):
        comparison = ResultsStore.compare(a, b)
        assert comparison.identical, (a.suite, comparison.differences)


def test_batch_bench_files_bit_identical_serial_vs_parallel(tmp_path):
    """BENCH_*.json written under --jobs 4 byte-match the summaries of a
    --jobs 1 run after the store round-trip."""
    names = ["E2", "E9"]
    serial_store = ResultsStore(tmp_path / "serial")
    parallel_store = ResultsStore(tmp_path / "parallel")
    run_batch(names, SweepConfig(seeds=(1, 2), quick=True, jobs=1),
              store=serial_store)
    run_batch(names, SweepConfig(seeds=(1, 2), quick=True, jobs=4),
              store=parallel_store)
    for name in names:
        comparison = ResultsStore.compare(
            serial_store.load_bench(name), parallel_store.load_bench(name)
        )
        assert comparison.identical, (name, comparison.differences)


def test_run_suite_routes_through_shared_scheduler():
    record = run_suite("E2", SweepConfig(seeds=(1, 2), quick=True, jobs=4))
    assert record.suite == "E2"
    assert record.jobs == 4
    assert record.wall_time_s > 0.0
    serial = run_suite("E2", SweepConfig(seeds=(1, 2), quick=True, jobs=1))
    assert ResultsStore.compare(record, serial).identical


def test_run_batch_unknown_suite_raises_before_any_work():
    with pytest.raises(KeyError, match="unknown suite"):
        run_batch(["E2", "E99"])


def test_run_batch_echoes_in_request_order():
    seen = []
    run_batch(["E9", "E2"], SweepConfig(seeds=(1, 2), quick=True, jobs=4),
              echo=lambda r: seen.append(r.suite))
    assert seen == ["E9", "E2"]


def test_mid_batch_failure_keeps_already_finished_suites(tmp_path, monkeypatch):
    """A failing suite aborts the batch, but suites that completed before
    it are already persisted — the PR 1 suite-at-a-time contract."""
    import repro.experiments.suites as suites_module

    def bad_plan(sweep):
        table = Table("bad", ["point", "x"])

        def boom(seed: int) -> dict:
            raise RuntimeError("suite exploded")

        return SuitePlan("EBAD", table, [SweepPoint(0, boom, ("x",))])

    monkeypatch.setitem(suites_module.SUITE_PLANS, "EBAD", bad_plan)
    store = ResultsStore(tmp_path)
    with pytest.raises(RuntimeError, match="suite exploded"):
        run_batch(["E2", "EBAD"],
                  SweepConfig(seeds=(1, 2), quick=True, jobs=1), store=store)
    assert store.bench_path("E2").exists()
    assert not store.bench_path("EBAD").exists()


# -- plan/table interface ------------------------------------------------------


def test_plans_and_table_callables_agree():
    """Every suite id has a plan builder, and the plan path produces the
    same table as the public Table-returning callable."""
    assert set(SUITE_PLANS) == set(ALL_SUITES)
    sweep = SweepConfig(seeds=(1, 2), quick=True, jobs=1)
    direct = ALL_SUITES["E2"](sweep)
    via_plan = run_plan(SUITE_PLANS["E2"](sweep), sweep)
    assert direct == via_plan


def test_suite_callables_keep_docstrings():
    for name, fn in ALL_SUITES.items():
        assert fn.__doc__, f"{name} lost its docstring"
        first = fn.__doc__.strip().splitlines()[0]
        assert first, name

"""Tests for the parallel experiment runner and the JSON results store."""

from __future__ import annotations

import json

import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments.config import SweepConfig
from repro.experiments.parallel import (
    available_jobs,
    replicate_parallel,
    replicate_rows,
    resolve_jobs,
    run_batch,
    run_suite,
)
from repro.experiments.reporting import Table
from repro.experiments.runner import replicate
from repro.experiments.store import ResultsStore, RunRecord, new_run_record
from repro.experiments.suites import ALL_SUITES
from repro.metrics.stats import Summary
from repro.sim.rng import RngRegistry


def _seeded_run(seed: int) -> dict:
    """A replication in the suites' style: all randomness from the seed."""
    rng = RngRegistry(seed).stream("test")
    return {"draw": float(rng.random()), "seed": float(seed)}


# -- parallel replication ------------------------------------------------------


def test_parallel_matches_serial_bit_identical():
    seeds = (1, 2, 3, 4, 5)
    serial = replicate(_seeded_run, seeds, jobs=1)
    parallel = replicate_parallel(_seeded_run, seeds, jobs=3)
    assert serial == parallel  # Summary dataclass equality is exact


def test_replicate_jobs_flag_routes_to_parallel():
    seeds = (1, 2, 3)
    assert replicate(_seeded_run, seeds, jobs=2) == replicate(_seeded_run, seeds)


def test_parallel_rows_preserve_seed_order():
    rows = replicate_rows(_seeded_run, (5, 1, 3), jobs=3)
    assert [r["seed"] for r in rows] == [5.0, 1.0, 3.0]


def test_parallel_preserves_key_mismatch_error():
    def bad(seed: int) -> dict:
        return {"x": 1.0} if seed == 1 else {"y": 1.0}

    with pytest.raises(ValueError, match="seed 2 returned keys"):
        replicate(bad, (1, 2), jobs=2)
    with pytest.raises(ValueError, match="seed 2 returned keys"):
        replicate(bad, (1, 2), jobs=1)


def test_parallel_propagates_worker_exception():
    def boom(seed: int) -> dict:
        if seed == 2:
            raise RuntimeError(f"seed {seed} exploded")
        return {"x": float(seed)}

    with pytest.raises(RuntimeError, match="seed 2 exploded"):
        replicate_parallel(boom, (1, 2, 3), jobs=3)


def test_parallel_closure_capture():
    """Suite-style closures (sweep point via default arg) need no pickling."""
    offset = 10.0

    def run(seed: int, offset=offset) -> dict:
        return {"x": offset + seed}

    summary = replicate_parallel(run, (1, 2), jobs=2)
    assert summary["x"].mean == pytest.approx(11.5)


def test_replications_are_history_independent():
    """Id sequences are rewound before every replication, so results
    cannot depend on what ran earlier in the process (the state leak
    that used to make E5 drift between serial and parallel runs)."""
    from repro.services.task import Task
    from repro.sim.sequences import reset_all_sequences

    def run(seed: int) -> dict:
        return {"seq": float(Task.fresh_id().rsplit("-", 1)[-1])}

    Task.fresh_id()  # pollute the process-wide counter
    first = replicate(run, (1, 2))
    Task.fresh_id()
    Task.fresh_id()
    second = replicate(run, (1, 2))
    assert first == second
    assert replicate_parallel(run, (1, 2), jobs=2) == first
    reset_all_sequences()
    assert Task.fresh_id() == "task-1"


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(None) == available_jobs()
    assert resolve_jobs(0) == available_jobs()
    assert available_jobs() >= 1


def test_suite_parallel_matches_serial():
    """A real E-suite produces identical tables under jobs=1 and jobs=2."""
    serial = run_suite("E2", SweepConfig(seeds=(1, 2), quick=True, jobs=1))
    parallel = run_suite("E2", SweepConfig(seeds=(1, 2), quick=True, jobs=2))
    comparison = ResultsStore.compare(serial, parallel)
    assert comparison.identical, comparison.differences


def test_run_suite_unknown_id():
    with pytest.raises(KeyError, match="unknown suite"):
        run_suite("E99")


# -- results store -------------------------------------------------------------


def _record() -> RunRecord:
    table = Table("T", ["point", "metric"], caption="cap")
    table.add_row("a", Summary(1.0, 0.1, 0.05, 4, 0.9, 1.1))
    table.add_row("b", Summary(2.0, 0.2, 0.10, 4, 1.8, 2.2))
    return new_run_record(
        "EX", table, SweepConfig(seeds=(1, 2), quick=True, jobs=2), 1.25
    )


def test_store_round_trip(tmp_path):
    store = ResultsStore(tmp_path)
    record = _record()
    path = store.save(record)
    assert path.parent == tmp_path / "runs" / "EX"
    loaded = store.load(path)
    assert loaded == record
    comparison = ResultsStore.compare(record, loaded)
    assert comparison.identical and comparison.differences == ()


def test_store_compare_reports_differences():
    record = _record()
    other_table = Table("T", ["point", "metric"], caption="cap")
    other_table.add_row("a", Summary(1.0, 0.1, 0.05, 4, 0.9, 1.1))
    other_table.add_row("b", Summary(9.0, 0.2, 0.10, 4, 1.8, 2.2))
    other = new_run_record(
        "EX", other_table, SweepConfig(seeds=(1, 2), quick=True, jobs=1), 9.0
    )
    comparison = ResultsStore.compare(record, other)
    assert not comparison.identical
    assert any("row 1" in d for d in comparison.differences)
    # Wall time / jobs / run id differences alone do NOT break identity.
    clone = RunRecord(
        suite=record.suite, run_id="other", timestamp="later",
        seeds=record.seeds, quick=record.quick, jobs=99,
        wall_time_s=123.0, table=record.table,
    )
    assert ResultsStore.compare(record, clone).identical


def test_store_latest_and_bench(tmp_path):
    store = ResultsStore(tmp_path)
    record = _record()
    store.save(record)
    bench = store.write_bench(record)
    assert bench == tmp_path / "BENCH_EX.json"
    assert store.load_bench("EX") == record
    assert store.latest("EX") == record
    assert store.latest("E404") is None
    assert store.list_runs("EX")
    assert ResultsStore(tmp_path / "empty").list_runs() == []


def test_record_summaries_keyed_by_sweep_point():
    summaries = _record().summaries()
    assert set(summaries) == {"a", "b"}
    assert summaries["a"]["metric"].mean == pytest.approx(1.0)


def test_run_batch_persists_and_echoes(tmp_path):
    store = ResultsStore(tmp_path)
    seen = []
    records = run_batch(
        ["E2"], SweepConfig(seeds=(1, 2), quick=True), store=store,
        echo=seen.append,
    )
    assert len(records) == len(seen) == 1
    assert store.bench_path("E2").exists()
    assert store.latest("E2") is not None
    assert records[0].wall_time_s > 0.0


# -- CLI -----------------------------------------------------------------------


def test_cli_writes_bench_json(tmp_path, capsys):
    rc = cli_main([
        "--quick", "--seeds", "2", "--jobs", "2", "--json",
        "--out", str(tmp_path), "E2",
    ])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report[0]["suite"] == "E2"
    assert report[0]["jobs"] == 2
    assert report[0]["wall_time_s"] > 0.0
    assert (tmp_path / "BENCH_E2.json").exists()
    assert list((tmp_path / "runs" / "E2").glob("*.json"))


def test_cli_no_save_leaves_no_artifacts(tmp_path, capsys):
    rc = cli_main([
        "--quick", "--seeds", "2", "--no-save", "--out", str(tmp_path), "E2",
    ])
    assert rc == 0
    assert "E2 — evaluator selection quality" in capsys.readouterr().out
    assert not (tmp_path / "BENCH_E2.json").exists()


def test_cli_list_matches_all_suites(capsys):
    """The --list output agrees with ALL_SUITES, whatever its size."""
    assert cli_main(["--list"]) == 0
    header, *body = capsys.readouterr().out.strip().splitlines()
    ids = list(ALL_SUITES)
    assert header == f"{len(ids)} suites ({ids[0]}–{ids[-1]}):"
    listed = [line.split()[0] for line in body]
    assert listed == ids

"""Unit tests for the task-precedence extension."""

from __future__ import annotations

import pytest

from repro.core.negotiation import negotiate
from repro.core.operation import run_operation_phase
from repro.services import workload
from repro.services.service import Service
from repro.sim.engine import Engine


def _tasks(n=3):
    service = workload.movie_playback_service(requester="r")
    base = service.tasks[0]
    from repro.services.task import Task

    return tuple(
        Task(task_id=f"t{i}", request=base.request,
             demand_model=base.demand_model, duration=10.0)
        for i in range(n)
    )


# -- Service precedence validation ---------------------------------------------


def test_default_service_has_no_precedence():
    service = workload.movie_playback_service(requester="r")
    assert service.precedence == ()
    for task in service.tasks:
        assert service.predecessors(task.task_id) == ()
        assert service.successors(task.task_id) == ()


def test_precedence_accessors():
    t = _tasks(3)
    service = Service(name="s", tasks=t, requester="r",
                      precedence=(("t0", "t1"), ("t1", "t2")))
    assert service.predecessors("t1") == ("t0",)
    assert service.successors("t1") == ("t2",)
    assert service.predecessors("t0") == ()
    with pytest.raises(KeyError):
        service.predecessors("ghost")


def test_precedence_rejects_unknown_ids():
    t = _tasks(2)
    with pytest.raises(ValueError):
        Service(name="s", tasks=t, requester="r", precedence=(("t0", "tX"),))


def test_precedence_rejects_self_loop():
    t = _tasks(2)
    with pytest.raises(ValueError):
        Service(name="s", tasks=t, requester="r", precedence=(("t0", "t0"),))


def test_precedence_rejects_cycles():
    t = _tasks(3)
    with pytest.raises(ValueError):
        Service(name="s", tasks=t, requester="r",
                precedence=(("t0", "t1"), ("t1", "t2"), ("t2", "t0")))


def test_critical_path_length():
    t = _tasks(4)  # each duration 10
    chain = Service(name="s", tasks=t, requester="r",
                    precedence=(("t0", "t1"), ("t1", "t2")))
    # t0->t1->t2 = 30; t3 independent = 10.
    assert chain.critical_path_length() == 30.0
    parallel = Service(name="p", tasks=t, requester="r")
    assert parallel.critical_path_length() == 10.0
    diamond = Service(
        name="d", tasks=t, requester="r",
        precedence=(("t0", "t1"), ("t0", "t2"), ("t1", "t3"), ("t2", "t3")),
    )
    assert diamond.critical_path_length() == 30.0


# -- operation-phase sequencing --------------------------------------------------


def test_pipeline_executes_in_order(small_cluster):
    topology, providers, nodes = small_cluster
    service = workload.pipeline_service(requester="requester")
    outcome = negotiate(service, topology, providers, commit=True)
    assert outcome.success
    engine = Engine(seed=1)
    report = run_operation_phase(outcome.coalition, topology, providers, engine)
    fetch, decode, enhance, audio = (t.task_id for t in service.tasks)
    assert report.completed == 4
    # Stage finish times respect precedence exactly (8 s stages).
    assert report.outcomes[fetch].finished_at == pytest.approx(8.0)
    assert report.outcomes[decode].finished_at == pytest.approx(16.0)
    assert report.outcomes[enhance].finished_at == pytest.approx(24.0)
    # The independent audio task ran in parallel from t=0.
    assert report.outcomes[audio].finished_at == pytest.approx(8.0)
    assert report.makespan == pytest.approx(service.critical_path_length())


def test_lost_predecessor_blocks_successors(small_cluster):
    """If the decode stage's executor dies with no recovery allowed, the
    enhance stage never starts and is reported lost."""
    topology, providers, nodes = small_cluster
    service = workload.pipeline_service(requester="requester")
    outcome = negotiate(service, topology, providers, commit=True)
    assert outcome.success
    decode_tid = service.tasks[1].task_id
    enhance_tid = service.tasks[2].task_id
    victim = outcome.coalition.awards[decode_tid].node_id
    engine = Engine(seed=2)
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine,
        failures=[(10.0, victim)],  # during the decode stage
        allow_reconfiguration=False,
    )
    assert report.outcomes[decode_tid].status == "lost"
    assert report.outcomes[enhance_tid].status == "lost"
    # Resources of the never-started stage were still released.
    for provider in providers.values():
        assert provider.node.manager.reserved.is_zero


def test_mid_pipeline_failure_reconfigures_and_completes(small_cluster):
    topology, providers, nodes = small_cluster
    service = workload.pipeline_service(requester="requester")
    outcome = negotiate(service, topology, providers, commit=True)
    assert outcome.success
    decode_tid = service.tasks[1].task_id
    victim = outcome.coalition.awards[decode_tid].node_id
    engine = Engine(seed=3)
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine,
        failures=[(12.0, victim)],
    )
    assert report.completed == 4
    assert report.outcomes[decode_tid].reallocations == 1
    # Decode restarted at 12 s, 8 s stage, enhance follows: 20 + 8 = 28.
    assert report.makespan == pytest.approx(28.0)


def test_failure_of_not_yet_started_stage(small_cluster):
    """Crashing the enhance executor before its stage starts reallocates
    it without restarting anything already done."""
    topology, providers, nodes = small_cluster
    service = workload.pipeline_service(requester="requester")
    outcome = negotiate(service, topology, providers, commit=True)
    assert outcome.success
    enhance_tid = service.tasks[2].task_id
    fetch_tid = service.tasks[0].task_id
    victim = outcome.coalition.awards[enhance_tid].node_id
    # Only meaningful if the enhance stage isn't colocated with fetch's
    # executor — crash at t=2 while only fetch/audio run.
    engine = Engine(seed=4)
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine,
        failures=[(2.0, victim)],
    )
    assert report.outcomes[enhance_tid].status == "completed"
    assert report.completed >= 3

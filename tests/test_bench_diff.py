"""Tests for the bench-report differ (tools/bench_diff.py)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import bench_diff  # noqa: E402 - needs the tools/ path above

from repro.experiments.config import SweepConfig  # noqa: E402
from repro.experiments.reporting import Table  # noqa: E402
from repro.experiments.store import ResultsStore, new_run_record  # noqa: E402
from repro.metrics.stats import describe  # noqa: E402


def write_bench(
    root: Path,
    suite: str = "EX",
    means=(1.0, 2.0),
    spread: float = 0.0,
    wall: float = 1.0,
) -> Path:
    """A minimal two-point bench report with controllable means/noise."""
    table = Table("t", ["point", "m1", "m2"])
    for point in ("p0", "p1"):
        table.add_row(
            point,
            describe([means[0] - spread, means[0], means[0] + spread]),
            describe([means[1] - spread, means[1], means[1] + spread]),
        )
    record = new_run_record(suite, table, SweepConfig(seeds=(1, 2, 3)), wall)
    return ResultsStore(root).write_bench(record)


def test_identical_reports_pass(tmp_path, capsys):
    old = write_bench(tmp_path / "a")
    new = write_bench(tmp_path / "b")
    assert bench_diff.main([str(old), str(new), "--rtol", "0"]) == 0
    out = capsys.readouterr().out
    assert "all metric means identical" in out


def test_drift_beyond_tolerance_fails(tmp_path, capsys):
    old = write_bench(tmp_path / "a", means=(1.0, 2.0))
    new = write_bench(tmp_path / "b", means=(1.2, 2.0))
    assert bench_diff.main([str(old), str(new), "--rtol", "0.05"]) == 1
    err = capsys.readouterr().err
    assert "regression(s) beyond the noise band" in err
    assert "m1" in err


def test_drift_within_rtol_passes(tmp_path):
    old = write_bench(tmp_path / "a", means=(1.0, 2.0))
    new = write_bench(tmp_path / "b", means=(1.02, 2.0))
    assert bench_diff.main([str(old), str(new), "--rtol", "0.05"]) == 0


def test_ci_slack_absorbs_noisy_drift(tmp_path):
    old = write_bench(tmp_path / "a", means=(1.0, 2.0), spread=0.5)
    new = write_bench(tmp_path / "b", means=(1.3, 2.0), spread=0.5)
    # Raw drift 0.3 >> rtol 0, but both cells carry wide 95% CIs.
    assert bench_diff.main([str(old), str(new), "--rtol", "0"]) == 0
    assert bench_diff.main(
        [str(old), str(new), "--rtol", "0", "--no-ci-slack"]
    ) == 1


def test_wall_time_reported_not_gated_by_default(tmp_path, capsys):
    old = write_bench(tmp_path / "a", wall=1.0)
    new = write_bench(tmp_path / "b", wall=10.0)
    assert bench_diff.main([str(old), str(new)]) == 0
    assert "wall time: 1.00s -> 10.00s" in capsys.readouterr().out
    assert bench_diff.main([str(old), str(new), "--wall-rtol", "0.5"]) == 1


def write_bench_wall_col(root: Path, throughput: float) -> Path:
    """A one-point report with one exact metric and one wall-clock
    throughput column (named like E22's ``sessions/s (wall)``)."""
    table = Table("t", ["point", "m1", "sessions/s (wall)"])
    table.add_row("p0", describe([1.0, 2.0, 3.0]),
                  describe([throughput] * 3))
    record = new_run_record("EX", table, SweepConfig(seeds=(1, 2, 3)), 1.0)
    return ResultsStore(root).write_bench(record)


def test_wall_columns_reported_not_gated(tmp_path, capsys):
    """Columns matching --wall-columns (default: named '(wall)') are
    machine-dependent throughput: drift is shown but never a
    regression, under both bands."""
    old = write_bench_wall_col(tmp_path / "a", throughput=20.0)
    new = write_bench_wall_col(tmp_path / "b", throughput=5.0)
    for band in ("rtol", "bootstrap"):
        assert bench_diff.main(
            [str(old), str(new), "--band", band, "--rtol", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "wall column, not gated" in out
    # The exemption is opt-out: an empty regex gates every column.
    assert bench_diff.main(
        [str(old), str(new), "--rtol", "0", "--wall-columns", ""]
    ) == 1


def test_wall_columns_bad_regex_exits_2(tmp_path, capsys):
    old = write_bench(tmp_path / "a")
    assert bench_diff.main(
        [str(old), str(old), "--wall-columns", "(unclosed"]
    ) == 2
    assert "invalid --wall-columns regex" in capsys.readouterr().err


def test_summary_vs_raw_cell_mismatch_exits_2(tmp_path, capsys):
    """A cell that is a summary in one report but raw in the other is
    'not comparable', not a crash or a silent skip."""
    old = write_bench(tmp_path / "a")
    new = write_bench(tmp_path / "b")
    data = json.loads(new.read_text())
    data["table"]["rows"][0][1] = 1.0  # raw float where old has a summary
    new.write_text(json.dumps(data))
    assert bench_diff.main([str(old), str(new)]) == 2
    err = capsys.readouterr().err
    assert "summary only in old report" in err


def write_bench_samples(root: Path, samples, wall: float = 1.0) -> Path:
    """A one-point bench report whose single metric carries exactly the
    given per-seed samples (for paired bootstrap-band tests)."""
    table = Table("t", ["point", "m1"])
    table.add_row("p0", describe(list(samples)))
    seeds = tuple(range(1, len(samples) + 1))
    record = new_run_record("EX", table, SweepConfig(seeds=seeds), wall)
    return ResultsStore(root).write_bench(record)


def test_bootstrap_band_accepts_within_noise_jitter(tmp_path, capsys):
    """A drift whose paired per-seed differences straddle zero is
    replication noise, not a regression — even with --rtol 0 semantics
    (the band comes from the samples, not a hand-picked tolerance)."""
    old = write_bench_samples(tmp_path / "a", [1.0, 2.0, 3.0, 4.0, 5.0])
    new = write_bench_samples(tmp_path / "b", [1.3, 1.8, 3.2, 3.9, 5.0])
    assert bench_diff.main([str(old), str(new), "--band", "bootstrap"]) == 0
    out = capsys.readouterr().out
    assert "noise band" in out
    assert "ok: within the noise band" in out


def test_bootstrap_band_rejects_real_regression(tmp_path, capsys):
    """A consistent shift in every seed gives a degenerate paired
    interval that excludes zero — flagged no matter how small."""
    old = write_bench_samples(tmp_path / "a", [1.0, 2.0, 3.0, 4.0, 5.0])
    new = write_bench_samples(tmp_path / "b", [1.05, 2.05, 3.05, 4.05, 5.05])
    assert bench_diff.main([str(old), str(new), "--band", "bootstrap"]) == 1
    err = capsys.readouterr().err
    assert "excludes zero" in err


def test_bootstrap_band_exact_on_identical_samples(tmp_path, capsys):
    """Bit-identical cells pass exactly — deterministic metrics keep
    their exact gate under the bootstrap band."""
    old = write_bench_samples(tmp_path / "a", [1.0, 2.0, 3.0])
    new = write_bench_samples(tmp_path / "b", [1.0, 2.0, 3.0])
    assert bench_diff.main([str(old), str(new), "--band", "bootstrap"]) == 0
    assert "all metric means identical" in capsys.readouterr().out


def test_bootstrap_band_falls_back_without_samples(tmp_path, capsys):
    """Schema-v1 reports (no per-seed samples) fall back to the rtol
    rule per cell, with the fallback noted in the drift line."""
    old = write_bench_samples(tmp_path / "a", [1.0, 2.0, 3.0])
    new = write_bench_samples(tmp_path / "b", [1.3, 2.3, 3.3])
    for path in (old, new):
        data = json.loads(path.read_text())
        for row in data["table"]["rows"]:
            del row[1]["__summary__"]["samples"]
        path.write_text(json.dumps(data))
    assert bench_diff.main(
        [str(old), str(new), "--band", "bootstrap", "--rtol", "0.5"]
    ) == 0
    assert "no samples, rtol rule" in capsys.readouterr().out
    assert bench_diff.main(
        [str(old), str(new), "--band", "bootstrap", "--rtol", "0.01",
         "--no-ci-slack"]
    ) == 1


def test_incomparable_reports_exit_2(tmp_path, capsys):
    old = write_bench(tmp_path / "a", suite="EX")
    new = write_bench(tmp_path / "b", suite="EY")
    assert bench_diff.main([str(old), str(new)]) == 2
    assert "not comparable" in capsys.readouterr().err


def test_malformed_report_exits_2(tmp_path):
    old = write_bench(tmp_path / "a")
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"not": "a bench report"}))
    with pytest.raises(SystemExit) as excinfo:
        bench_diff.load_report(bad)
    assert excinfo.value.code == 2
    missing = tmp_path / "missing.json"
    with pytest.raises(SystemExit):
        bench_diff.load_report(missing)
    assert bench_diff.main([str(old), str(old)]) == 0  # self-diff sanity

"""The repro.features switch registry: delegation, override, snapshots."""

import pytest

import repro.core.negotiation as negotiation
import repro.features as features
import repro.network.topology as topology_mod
import repro.workloads.contention as contention


def test_registry_names_and_defaults():
    assert set(features.FEATURES) == {
        "batch-evaluation", "vector-topology", "session-driver", "shard",
        "faults",
    }
    # Every fast path ships enabled.
    assert features.snapshot() == {
        "batch-evaluation": True,
        "vector-topology": True,
        "session-driver": True,
        "shard": True,
        "faults": True,
    }


def test_unknown_feature_raises():
    with pytest.raises(KeyError, match="unknown feature"):
        features.is_enabled("warp-drive")
    with pytest.raises(KeyError, match="unknown feature"):
        features.set_enabled("warp-drive", True)


@pytest.mark.parametrize(
    "name, module, attribute",
    [
        ("batch-evaluation", negotiation, "USE_BATCH_EVALUATION"),
        ("vector-topology", topology_mod, "USE_VECTOR_TOPOLOGY"),
        ("session-driver", contention, "USE_SESSION_DRIVER"),
    ],
)
def test_set_enabled_delegates_to_module_global(name, module, attribute):
    original = getattr(module, attribute)
    try:
        features.set_enabled(name, False)
        assert getattr(module, attribute) is False
        assert features.is_enabled(name) is False
        features.set_enabled(name, True)
        assert getattr(module, attribute) is True
    finally:
        setattr(module, attribute, original)


def test_monkeypatched_global_is_visible_to_registry(monkeypatch):
    # The two styles compose: tests that patch the module global
    # directly are seen by the registry, and vice versa.
    monkeypatch.setattr(negotiation, "USE_BATCH_EVALUATION", False)
    assert features.is_enabled("batch-evaluation") is False


def test_override_restores_on_exit_and_on_error():
    assert features.is_enabled("session-driver") is True
    with features.override("session-driver", False):
        assert contention.USE_SESSION_DRIVER is False
    assert contention.USE_SESSION_DRIVER is True
    with pytest.raises(RuntimeError):
        with features.override("session-driver", False):
            raise RuntimeError("boom")
    assert contention.USE_SESSION_DRIVER is True


def test_describe_lists_every_switch():
    text = features.describe()
    for name in features.FEATURES:
        assert name in text


def test_negotiate_snapshots_batch_switch_at_entry():
    # score_admissible honors an explicit use_batch pin regardless of
    # the global — the mechanism negotiate() uses to keep one run on
    # one path.
    import inspect
    sig = inspect.signature(negotiation.score_admissible)
    assert "use_batch" in sig.parameters
    src = inspect.getsource(negotiation.negotiate)
    assert "use_batch = USE_BATCH_EVALUATION" in src


def test_session_driver_switch_falls_back_to_admission_only(monkeypatch):
    from repro.sessions import SessionPolicy
    from repro.workloads.contention import ContentionConfig, run_contention

    config = ContentionConfig(
        n_requesters=2, horizon=120.0,
        sessions=SessionPolicy(operate=True),
    )
    streaming = run_contention(7, config)
    monkeypatch.setattr(contention, "USE_SESSION_DRIVER", False)
    legacy = run_contention(7, config)
    baseline = run_contention(7, ContentionConfig(n_requesters=2, horizon=120.0))
    # With the switch off, operate=True behaves exactly like the
    # admission-only loop...
    assert legacy.sessions == baseline.sessions
    # ...while both modes see identical arrivals (independent streams).
    assert [s.arrival for s in streaming.sessions] == [
        s.arrival for s in legacy.sessions
    ]

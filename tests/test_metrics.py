"""Unit tests for utility metrics, collection, and statistics."""

from __future__ import annotations

import math

import pytest

from repro.core.negotiation import negotiate
from repro.core.proposal import Proposal
from repro.metrics.collector import collect_outcome_metrics
from repro.metrics.stats import confidence_interval, describe, mean_ci, summarize_rows
from repro.metrics.utility import (
    allocation_utility,
    assignment_utility,
    outcome_utility,
    proposal_utility,
)
from repro.qos import catalog
from repro.qos.catalog import COLOR_DEPTH, FRAME_RATE, SAMPLE_BITS, SAMPLING_RATE


@pytest.fixture
def request_():
    return catalog.surveillance_request()


def _values(**overrides):
    base = {FRAME_RATE: 10, COLOR_DEPTH: 3, SAMPLING_RATE: 8, SAMPLE_BITS: 8}
    base.update(overrides)
    return base


# -- utility ----------------------------------------------------------------


def test_preferred_assignment_has_utility_one(request_):
    assert assignment_utility(request_, _values()) == pytest.approx(1.0)


def test_utility_decreases_with_degradation(request_):
    u_top = assignment_utility(request_, _values())
    u_mid = assignment_utility(request_, _values(**{FRAME_RATE: 5}))
    u_low = assignment_utility(request_, _values(**{FRAME_RATE: 1, COLOR_DEPTH: 1}))
    assert u_top > u_mid > u_low >= 0.0


def test_utility_bounded(request_):
    for fr in (1, 10, 30):
        for cd in (1, 3, 24):
            u = assignment_utility(request_, _values(**{FRAME_RATE: fr, COLOR_DEPTH: cd}))
            assert 0.0 <= u <= 1.0


def test_proposal_utility_matches_assignment(request_):
    p = Proposal(task_id="t", node_id="n", values=_values(**{FRAME_RATE: 7}))
    assert proposal_utility(request_, p) == pytest.approx(
        assignment_utility(request_, _values(**{FRAME_RATE: 7}))
    )


def test_allocation_utility_from_distance(request_):
    assert allocation_utility(request_, 0.0) == 1.0
    assert allocation_utility(request_, 1e9) == 0.0


def test_outcome_utility_counts_unallocated_as_zero(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(movie_service, topology, providers, commit=False)
    full = outcome_utility(outcome)
    # Remove one award: mean utility drops by that task's share.
    tid = movie_service.tasks[0].task_id
    del outcome.coalition.awards[tid]
    partial = outcome_utility(outcome)
    assert partial < full
    assert partial == pytest.approx(full - 0.5, abs=1e-9)


# -- collector ----------------------------------------------------------------


def test_collect_outcome_metrics(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(movie_service, topology, providers, commit=False)
    m = collect_outcome_metrics(outcome)
    assert m.success
    assert m.allocated_tasks == m.total_tasks == 2
    assert m.allocation_rate == 1.0
    assert 0.0 <= m.utility <= 1.0
    d = m.as_dict()
    assert d["success"] == 1.0
    assert set(d) >= {"utility", "coalition_size", "message_count"}


# -- statistics ----------------------------------------------------------------


def test_describe_basics():
    s = describe([1.0, 2.0, 3.0])
    assert s.mean == pytest.approx(2.0)
    assert s.n == 3
    assert s.minimum == 1.0 and s.maximum == 3.0
    assert s.std == pytest.approx(1.0)
    assert s.ci_half_width == pytest.approx(1.959963984540054 / math.sqrt(3))


def test_describe_single_sample():
    s = describe([5.0])
    assert s.mean == 5.0 and s.std == 0.0 and s.ci_half_width == 0.0


def test_describe_empty_raises():
    with pytest.raises(ValueError):
        describe([])


def test_mean_ci_and_interval():
    mean, half = mean_ci([2.0, 4.0])
    lo, hi = confidence_interval([2.0, 4.0])
    assert mean == 3.0
    assert lo == pytest.approx(3.0 - half)
    assert hi == pytest.approx(3.0 + half)


def test_summarize_rows():
    rows = [{"a": 1.0, "b": 10.0}, {"a": 3.0, "b": 30.0}]
    out = summarize_rows(rows)
    assert out["a"].mean == 2.0 and out["b"].mean == 20.0
    with pytest.raises(ValueError):
        summarize_rows([])


def test_summary_str():
    assert "n=2" in str(describe([1.0, 2.0]))

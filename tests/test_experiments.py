"""Smoke tests for the experiment harness and every E-suite."""

from __future__ import annotations

import pytest

from repro.experiments.config import ClusterConfig, SweepConfig
from repro.experiments.reporting import Table
from repro.experiments.runner import replicate
from repro.experiments.scenario import (
    build_agent_system,
    build_cluster,
    mixed_fleet,
    uniform_fleet,
)
from repro.experiments.suites import ALL_SUITES
from repro.metrics.stats import Summary
from repro.sim.rng import RngRegistry

QUICK = SweepConfig(seeds=(1, 2), quick=True)


# -- reporting ----------------------------------------------------------------


def test_table_rendering_and_columns():
    t = Table("T", ["a", "b"], caption="cap")
    t.add_row(1, 2.5)
    t.add_row("x", Summary(1.0, 0.1, 0.05, 4, 0.9, 1.1))
    text = t.render()
    assert "T" in text and "cap" in text and "1.000±0.050" in text
    assert t.column("a") == [1, "x"]
    with pytest.raises(KeyError):
        t.column("ghost")
    with pytest.raises(ValueError):
        t.add_row(1)
    with pytest.raises(ValueError):
        Table("T", [])


# -- runner ----------------------------------------------------------------


def test_replicate_aggregates():
    out = replicate(lambda seed: {"x": float(seed)}, seeds=(1, 2, 3))
    assert out["x"].mean == pytest.approx(2.0)


def test_replicate_rejects_inconsistent_keys():
    def run(seed):
        return {"x": 1.0} if seed == 1 else {"y": 1.0}

    with pytest.raises(ValueError):
        replicate(run, seeds=(1, 2))


# -- scenarios ----------------------------------------------------------------


def test_mixed_fleet_composition():
    rng = RngRegistry(1).stream("f")
    nodes = mixed_fleet(ClusterConfig(n_nodes=10), rng)
    assert len(nodes) == 10
    assert nodes[0].node_id == "requester"
    from repro.resources.node import NodeClass

    assert nodes[0].node_class is NodeClass.PHONE


def test_build_cluster_is_seed_deterministic():
    a = build_cluster(ClusterConfig(n_nodes=6), seed=9)
    b = build_cluster(ClusterConfig(n_nodes=6), seed=9)
    assert [n.position for n in a[2]] == [n.position for n in b[2]]
    c = build_cluster(ClusterConfig(n_nodes=6), seed=10)
    assert [n.position for n in a[2]] != [n.position for n in c[2]]


def test_uniform_fleet_spread():
    from repro.resources.kinds import ResourceKind

    rng = RngRegistry(1).stream("f")
    homogeneous = uniform_fleet(5, cpu_mean=200.0, cpu_spread=0.0, rng=rng)
    cpus = [n.capacity.get(ResourceKind.CPU) for n in homogeneous]
    assert all(abs(c - 200.0) < 1e-6 for c in cpus)
    spread = uniform_fleet(20, cpu_mean=200.0, cpu_spread=0.5,
                           rng=RngRegistry(2).stream("f"))
    cpus2 = [n.capacity.get(ResourceKind.CPU) for n in spread]
    assert min(cpus2) < 180.0 < 220.0 < max(cpus2)
    with pytest.raises(ValueError):
        uniform_fleet(3, 200.0, 2.0, rng)


def test_build_agent_system():
    system = build_agent_system(ClusterConfig(n_nodes=5), seed=3)
    assert len(system.nodes) == 5


# -- suites (quick smoke + shape assertions) ---------------------------------


@pytest.mark.parametrize("name", sorted(ALL_SUITES))
def test_suite_runs_and_returns_table(name):
    table = ALL_SUITES[name](QUICK)
    assert isinstance(table, Table)
    assert len(table.rows) >= 2
    assert table.render()  # renders without error


def test_e1_shape_coalition_beats_single():
    table = ALL_SUITES["E1"](QUICK)
    singles = [s.mean for s in table.column("single success")]
    coals = [s.mean for s in table.column("coalition success")]
    # The weak requester alone never serves the movie; coalitions do.
    assert max(singles) == 0.0
    assert min(coals) > 0.5


def test_e2_shape_zero_regret():
    table = ALL_SUITES["E2"](QUICK)
    regrets = [s.mean for s in table.column("regret vs best")]
    assert all(r == pytest.approx(0.0) for r in regrets)


def test_e3_shape_paper_heuristic_wins():
    table = ALL_SUITES["E3"](QUICK)
    rows = table.rows
    # Under load (fraction < 1) the paper strategy retains >= reward.
    for row in rows[1:]:
        paper, random_ = row[1].mean, row[2].mean
        assert paper >= random_ - 1e-9


def test_e9_shape_positional_weights_protect_top_dim():
    table = ALL_SUITES["E9"](QUICK)
    by_scheme = {row[0]: row[1].mean for row in table.rows}
    assert by_scheme["linear (paper)"] == pytest.approx(100.0)
    assert by_scheme["geometric"] == pytest.approx(100.0)
    assert by_scheme["uniform"] == pytest.approx(0.0)

"""The batched-evaluation bit-exactness contract (docs/performance.md).

Three layers of guarantees:

1. ``BatchProposalEvaluator`` equals ``ProposalEvaluator.distance``
   **exactly** (``==``, not approx) on randomized proposals, for the
   requests of every service family and both ``normalize_by`` modes;
2. whole negotiations — synchronous driver and agent-based protocol —
   produce identical outcomes with ``USE_BATCH_EVALUATION`` on and off;
3. suite tables (E4's agent path, E15's contention path) are
   bit-identical before/after the batched rewire, extending the
   parallel==serial pattern of ``tests/test_scheduler.py``.

Plus the message-count pin: the synchronous driver's ``message_count``
must equal what the agent-based organizer actually sends.
"""

from __future__ import annotations

import pytest

import repro.core.negotiation as negotiation_module
from repro.agents.system import AgentSystem
from repro.core.evaluation import (
    BatchProposalEvaluator,
    ProposalEvaluator,
    WeightScheme,
)
from repro.core.negotiation import negotiate
from repro.core.proposal import Proposal
from repro.errors import DomainError, NegotiationError, UnknownNodeError
from repro.experiments.config import ClusterConfig, SweepConfig
from repro.experiments.scenario import build_cluster
from repro.experiments.suites import ALL_SUITES
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.qos import catalog
from repro.qos.levels import DegradationLadder
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.services import workload
from repro.sim.rng import RngRegistry
from repro.sim.sequences import reset_all_sequences
from repro.workloads.services import SERVICE_FAMILIES, build_service


def _family_requests():
    """One (label, request) pair per service family task, plus catalog
    requests — every request shape the suites evaluate proposals for."""
    pairs = []
    for family in SERVICE_FAMILIES:
        service = build_service(family, requester="r")
        for task in service.tasks:
            pairs.append((f"{family}:{task.task_id}", task.request))
    pairs.append(("catalog:surveillance", catalog.surveillance_request()))
    pairs.append(("catalog:hq-streaming", catalog.high_quality_streaming_request()))
    return pairs


def _random_proposals(request, rng, count=40):
    ladder = DegradationLadder.from_request(request)
    proposals = []
    for i in range(count):
        values = {
            attr: ladder.ladder(attr)[int(rng.integers(ladder.depth(attr)))]
            for attr in request.attribute_names
        }
        proposals.append(Proposal(task_id="t", node_id=f"n{i}", values=values))
    return proposals


@pytest.mark.parametrize("normalize_by", ["domain", "request"])
@pytest.mark.parametrize("label,request_", _family_requests(),
                         ids=lambda p: p if isinstance(p, str) else "")
def test_batch_equals_scalar_exactly(label, request_, normalize_by):
    """Every distance equal with ``==`` — same floats, not close floats."""
    rng = RngRegistry(20260727).stream(f"batch:{label}:{normalize_by}")
    proposals = _random_proposals(request_, rng)
    for weights in WeightScheme:
        scalar = ProposalEvaluator(
            request_, weights=weights, normalize_by=normalize_by
        )
        batch = BatchProposalEvaluator(
            request_, weights=weights, normalize_by=normalize_by
        )
        batched = batch.distances(proposals)
        for i, proposal in enumerate(proposals):
            assert batched[i] == scalar.distance(proposal)
        # The singleton wrapper goes through the same compiled path.
        assert batch.distance(proposals[0]) == scalar.distance(proposals[0])


def test_compiled_arrays_mirror_scalar_weights():
    """The introspection arrays expose exactly the weights/denominators
    the scalar evaluator derives per call."""
    request = catalog.surveillance_request()
    scalar = ProposalEvaluator(request)
    batch = BatchProposalEvaluator(request)
    assert list(batch.dim_weights) == [
        scalar.dimension_weight(dp.dimension) for dp in request.dimensions
    ]
    assert list(batch.attr_weights) == [
        scalar.attribute_weight(dp.dimension, ap.attribute)
        for dp in request.dimensions for ap in dp.attributes
    ]
    assert len(batch.denominators) == len(batch.attr_weights)
    assert all(d > 0 for d in batch.denominators)


def test_batch_signed_mode_equals_scalar():
    request = catalog.surveillance_request()
    rng = RngRegistry(99).stream("signed")
    proposals = _random_proposals(request, rng, count=25)
    scalar = ProposalEvaluator(request, signed=True)
    batch = BatchProposalEvaluator(request, signed=True)
    batched = batch.distances(proposals)
    for i, proposal in enumerate(proposals):
        assert batched[i] == scalar.distance(proposal)


def test_batch_empty_and_error_parity():
    request = catalog.surveillance_request()
    batch = BatchProposalEvaluator(request)
    assert list(batch.distances([])) == []
    with pytest.raises(NegotiationError):
        BatchProposalEvaluator(request, normalize_by="bogus")
    # Missing attribute -> the scalar path's KeyError.
    with pytest.raises(KeyError):
        batch.distances([Proposal(task_id="t", node_id="n", values={})])
    # Out-of-domain value -> the scalar path's DomainError.
    good = _random_proposals(request, RngRegistry(1).stream("e"), count=1)[0]
    bad_values = dict(good.values)
    bad_values[request.attribute_names[0]] = object()
    with pytest.raises(DomainError):
        batch.distances([Proposal(task_id="t", node_id="n", values=bad_values)])


# -- whole-negotiation A/B: batched vs scalar step 3 ------------------------


def _run_sync(seed: int) -> dict:
    # Rewind the process-wide id sequences (as the experiment runner
    # does): the selection tie-break hashes (task id, node id), so the
    # comparison needs identical task ids in both runs.
    reset_all_sequences()
    topology, providers, _nodes, _registry = build_cluster(
        ClusterConfig(n_nodes=12), seed
    )
    service = workload.movie_playback_service(requester="requester")
    outcome = negotiate(service, topology, providers, commit=False)
    def stable(task_id: str) -> str:
        # Strip the process-global task counter ("movie-video-11" vs
        # "movie-video-17"): only the task identity matters here.
        return task_id.rsplit("-", 1)[0]

    return {
        "members": sorted(outcome.coalition.members),
        "awards": {
            stable(tid): (a.node_id, a.distance, a.comm_cost)
            for tid, a in outcome.coalition.awards.items()
        },
        "unallocated": [stable(tid) for tid in outcome.unallocated],
        "messages": outcome.message_count,
    }


def test_negotiate_identical_with_and_without_batching(monkeypatch):
    batched = [_run_sync(seed) for seed in (1, 2, 3)]
    monkeypatch.setattr(negotiation_module, "USE_BATCH_EVALUATION", False)
    scalar = [_run_sync(seed) for seed in (1, 2, 3)]
    assert batched == scalar


@pytest.mark.parametrize("suite", ["E4", "E15"])
def test_suite_tables_bit_identical_with_and_without_batching(suite, monkeypatch):
    """The rewire acceptance bar: whole suite tables, agent path (E4)
    and contention path (E15), equal cell for cell."""
    sweep = SweepConfig(seeds=(1, 2), quick=True, jobs=1)
    with_batch = ALL_SUITES[suite](sweep)
    monkeypatch.setattr(negotiation_module, "USE_BATCH_EVALUATION", False)
    without_batch = ALL_SUITES[suite](sweep)
    assert with_batch == without_batch


# -- message-count pin: synchronous driver vs agent-based protocol ----------


def _fixed_positions(nodes):
    spots = [(50.0, 50.0), (60.0, 50.0), (40.0, 50.0), (50.0, 65.0)]
    for node, (x, y) in zip(nodes, spots):
        node.move_to(x, y)


def test_sync_and_agent_message_counts_match():
    """Multi-task service, reliable channel, static in-range cluster:
    both paths must count the same radio messages — CFP copies, one
    bundled PROPOSE per responding remote node, one message per remote
    award."""

    def fleet():
        return [
            Node("requester", NodeClass.PHONE),
            Node("pda", NodeClass.PDA),
            Node("lap1", NodeClass.LAPTOP),
            Node("lap2", NodeClass.LAPTOP),
        ]

    # Agent path. (Sequences rewound per path so both services carry
    # identical task ids — the selection tie-break hashes them.)
    reset_all_sequences()
    agent_nodes = fleet()
    system = AgentSystem(agent_nodes, seed=5, reliable_channel=True)
    _fixed_positions(agent_nodes)
    system.topology.rebuild()
    agent_outcome = system.negotiate(
        workload.movie_playback_service(requester="requester", name="m1")
    )
    assert agent_outcome is not None and agent_outcome.success

    # Synchronous path on an identical, fresh cluster.
    reset_all_sequences()
    sync_nodes = fleet()
    _fixed_positions(sync_nodes)
    topology = Topology(sync_nodes, DiscRadio())
    providers = {n.node_id: QoSProvider(n) for n in sync_nodes}
    sync_outcome = negotiate(
        workload.movie_playback_service(requester="requester", name="m1"),
        topology, providers, commit=True,
    )
    assert sync_outcome.success

    assert agent_outcome.proposals_received == sync_outcome.proposals_received
    assert agent_outcome.message_count == sync_outcome.message_count
    assert sorted(agent_outcome.coalition.members) == sorted(
        sync_outcome.coalition.members
    )


# -- narrowed error masking -------------------------------------------------


def test_comm_cost_propagates_unknown_node_bug():
    """A proposal from a node id the topology never heard of is a bug
    and must raise, not score as 'unreachable'."""
    nodes = [
        Node("requester", NodeClass.PHONE, position=(0.0, 0.0)),
        Node("helper", NodeClass.LAPTOP, position=(10.0, 0.0)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    # Register a provider under a typo'd id that is absent from the
    # topology: its proposals reach step 3, where comm_cost must raise.
    ghost = Node("heIper", NodeClass.LAPTOP, position=(10.0, 0.0))
    providers["heIper"] = QoSProvider(ghost)
    service = workload.movie_playback_service(requester="requester")
    with pytest.raises(UnknownNodeError):
        negotiate(
            service, topology, providers, commit=False,
            candidates=["requester", "helper", "heIper"],
        )

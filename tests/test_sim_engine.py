"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Engine
from repro.sim.events import Priority


def test_initial_state():
    eng = Engine()
    assert eng.now == 0.0
    assert eng.pending == 0
    assert eng.events_fired == 0
    assert eng.peek() is None


def test_schedule_and_run_order():
    eng = Engine()
    fired = []
    eng.schedule(3.0, lambda now: fired.append(("c", now)))
    eng.schedule(1.0, lambda now: fired.append(("a", now)))
    eng.schedule(2.0, lambda now: fired.append(("b", now)))
    count = eng.run()
    assert count == 3
    assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
    assert eng.now == 3.0


def test_same_time_fifo_within_priority():
    eng = Engine()
    fired = []
    for tag in "abc":
        eng.schedule(1.0, lambda now, t=tag: fired.append(t))
    eng.run()
    assert fired == ["a", "b", "c"]


def test_priority_ordering_at_same_time():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda now: fired.append("timer"), priority=Priority.TIMER)
    eng.schedule(1.0, lambda now: fired.append("delivery"), priority=Priority.DELIVERY)
    eng.schedule(1.0, lambda now: fired.append("monitor"), priority=Priority.MONITOR)
    eng.schedule(1.0, lambda now: fired.append("normal"), priority=Priority.NORMAL)
    eng.run()
    assert fired == ["delivery", "normal", "timer", "monitor"]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SchedulingError):
        eng.schedule(-0.1, lambda now: None)


def test_nan_delay_rejected():
    eng = Engine()
    with pytest.raises(SchedulingError):
        eng.schedule(float("nan"), lambda now: None)


def test_schedule_at_past_rejected():
    eng = Engine()
    eng.schedule(5.0, lambda now: None)
    eng.run()
    assert eng.now == 5.0
    with pytest.raises(SchedulingError):
        eng.schedule_at(4.0, lambda now: None)


def test_cancel_event():
    eng = Engine()
    fired = []
    handle = eng.schedule(1.0, lambda now: fired.append("x"))
    assert handle.cancel() is True
    assert handle.cancel() is False  # second cancel is a no-op
    eng.run()
    assert fired == []
    assert eng.pending == 0


def test_run_until_horizon():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda now: fired.append(1))
    eng.schedule(5.0, lambda now: fired.append(5))
    eng.schedule(10.0, lambda now: fired.append(10))
    eng.run(until=5.0)
    assert fired == [1, 5]  # events exactly at the horizon still fire
    assert eng.now == 5.0
    assert eng.pending == 1
    eng.run()
    assert fired == [1, 5, 10]


def test_run_until_advances_clock_when_queue_short():
    eng = Engine()
    eng.schedule(1.0, lambda now: None)
    eng.run(until=42.0)
    assert eng.now == 42.0


def test_nested_scheduling_from_callback():
    eng = Engine()
    fired = []

    def first(now):
        fired.append(("first", now))
        eng.schedule(2.0, lambda t: fired.append(("second", t)))

    eng.schedule(1.0, first)
    eng.run()
    assert fired == [("first", 1.0), ("second", 3.0)]


def test_stop_from_callback():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda now: (fired.append(1), eng.stop()))
    eng.schedule(2.0, lambda now: fired.append(2))
    eng.run()
    assert fired == [1]
    assert eng.pending == 1


def test_max_events_guard():
    eng = Engine()

    def forever(now):
        eng.schedule(1.0, forever)

    eng.schedule(1.0, forever)
    fired = eng.run(max_events=10)
    assert fired == 10


def test_step_returns_false_on_empty():
    eng = Engine()
    assert eng.step() is False


def test_peek_skips_cancelled():
    eng = Engine()
    h = eng.schedule(1.0, lambda now: None)
    eng.schedule(2.0, lambda now: None)
    h.cancel()
    assert eng.peek() == 2.0


def test_reentrant_run_rejected():
    eng = Engine()

    def nested(now):
        eng.run()

    eng.schedule(1.0, nested)
    with pytest.raises(SchedulingError):
        eng.run()


def test_zero_delay_fires_at_current_time():
    eng = Engine()
    times = []
    eng.schedule(1.0, lambda now: eng.schedule(0.0, lambda t: times.append(t)))
    eng.run()
    assert times == [1.0]


def test_events_fired_counter():
    eng = Engine()
    for i in range(5):
        eng.schedule(float(i), lambda now: None)
    eng.run()
    assert eng.events_fired == 5

"""Property-based tests (hypothesis) for core invariants.

These encode the mathematical guarantees the paper's equations and our
substrates must uphold, over randomized inputs:

* eq. 5 ``dif``: bounded by 1, zero iff proposed == preferred (domain
  normalization), monotone in quality-index distance;
* eq. 3 weights: in (0, 1], non-increasing in rank;
* eq. 2 distance: non-negative, zero exactly at the preferred proposal;
* eq. 1 reward: maximal at the top level, monotone under degradation;
* formulation: terminates, result schedulable when feasible, never
  violates dependencies;
* Resource Manager: reserved + available == capacity under arbitrary
  reserve/release interleavings;
* Capacity algebra: addition/subtraction roundtrips, covers() ordering;
* DES engine: events fire in non-decreasing time order;
* topology: disc-model symmetry.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import ProposalEvaluator, WeightScheme
from repro.core.formulation import formulate
from repro.core.proposal import Proposal
from repro.core.reward import LinearPenalty, QuadraticPenalty, local_reward
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.qos import catalog
from repro.qos.catalog import COLOR_DEPTH, FRAME_RATE, SAMPLE_BITS, SAMPLING_RATE
from repro.qos.levels import DegradationLadder
from repro.resources.capacity import Capacity
from repro.resources.kinds import ResourceKind
from repro.resources.manager import ResourceManager
from repro.resources.node import Node
from repro.services import workload
from repro.services.task import Task
from repro.sim.engine import Engine

REQUEST = catalog.surveillance_request()
EVALUATOR = ProposalEvaluator(REQUEST)
LADDER = DegradationLadder.from_request(REQUEST)

frame_rates = st.integers(min_value=1, max_value=30)
color_depths = st.sampled_from([1, 3, 8, 16, 24])
sampling_rates = st.sampled_from([8, 16, 24, 44])
sample_bits = st.sampled_from([8, 16, 24])


def _proposal(fr, cd, sr, sb):
    return Proposal(
        task_id="t", node_id="n",
        values={FRAME_RATE: fr, COLOR_DEPTH: cd,
                SAMPLING_RATE: sr, SAMPLE_BITS: sb},
    )


# -- eq. 5 --------------------------------------------------------------------


@given(frame_rates)
def test_dif_continuous_bounded_and_zero_iff_preferred(fr):
    d = EVALUATOR.dif(FRAME_RATE, fr)
    assert 0.0 <= d <= 1.0
    assert (d == 0.0) == (fr == 10)


@given(color_depths)
def test_dif_discrete_bounded_and_zero_iff_preferred(cd):
    d = EVALUATOR.dif(COLOR_DEPTH, cd)
    assert 0.0 <= d <= 1.0
    assert (d == 0.0) == (cd == 3)


@given(st.sampled_from([1, 3, 8, 16, 24]), st.sampled_from([1, 3, 8, 16, 24]))
def test_dif_discrete_monotone_in_position_distance(a, b):
    """Larger quality-index distance from the preferred value => larger dif."""
    domain = REQUEST.spec.attribute(COLOR_DEPTH).domain
    pref_pos = domain.position(3)
    da, db = EVALUATOR.dif(COLOR_DEPTH, a), EVALUATOR.dif(COLOR_DEPTH, b)
    if abs(domain.position(a) - pref_pos) < abs(domain.position(b) - pref_pos):
        assert da < db


# -- eq. 3 --------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=30))
def test_weights_bounded_and_monotone(n):
    for scheme in WeightScheme:
        ws = [scheme.weight(k, n) for k in range(1, n + 1)]
        assert all(0.0 < w <= 1.0 for w in ws)
        assert all(ws[i] >= ws[i + 1] for i in range(n - 1))


@given(st.integers(min_value=1, max_value=30))
def test_linear_weight_formula_exact(n):
    """eq. 3 verbatim: w_k = (n - k + 1)/n."""
    for k in range(1, n + 1):
        assert WeightScheme.LINEAR.weight(k, n) == (n - k + 1) / n


# -- eq. 2 --------------------------------------------------------------------


@given(frame_rates, color_depths, sampling_rates, sample_bits)
def test_distance_nonnegative_and_bounded(fr, cd, sr, sb):
    d = EVALUATOR.distance(_proposal(fr, cd, sr, sb))
    assert 0.0 <= d <= EVALUATOR.max_distance() + 1e-12


@given(frame_rates, color_depths, sampling_rates, sample_bits)
def test_distance_zero_iff_fully_preferred(fr, cd, sr, sb):
    d = EVALUATOR.distance(_proposal(fr, cd, sr, sb))
    preferred = (fr == 10 and cd == 3 and sr == 8 and sb == 8)
    assert (d == 0.0) == preferred


@given(frame_rates, frame_rates)
def test_distance_respects_frame_rate_dominance(fr_a, fr_b):
    """All else equal, the frame rate closer to preference scores lower."""
    da = EVALUATOR.distance(_proposal(fr_a, 3, 8, 8))
    db = EVALUATOR.distance(_proposal(fr_b, 3, 8, 8))
    if abs(fr_a - 10) < abs(fr_b - 10):
        assert da < db


# -- eq. 1 --------------------------------------------------------------------


@st.composite
def assignments(draw):
    indices = {}
    for attr, ladder in LADDER.ladders.items():
        indices[attr] = draw(st.integers(0, len(ladder) - 1))
    from repro.qos.levels import QualityAssignment

    return QualityAssignment(LADDER, indices)


@given(assignments())
def test_reward_maximal_at_top(a):
    n = len(LADDER.ladders)
    assert local_reward(a) <= n
    assert (local_reward(a) == n) == a.at_top


@given(assignments(), st.sampled_from([LinearPenalty(), QuadraticPenalty()]))
def test_reward_monotone_under_degradation(a, policy):
    for attr in LADDER.ladders:
        if a.can_degrade(attr):
            assert local_reward(a.degrade(attr), policy) <= local_reward(a, policy)


# -- formulation --------------------------------------------------------------


@given(st.floats(min_value=10.0, max_value=400.0))
@settings(max_examples=25, deadline=None)
def test_formulation_terminates_and_respects_budget(budget):
    task = Task(
        task_id="v", request=catalog.surveillance_request(),
        demand_model=workload.video_decode_demand(),
    )

    def check(assignments):
        demand = task.demand_at(assignments["v"].values())
        return demand.get(ResourceKind.CPU) <= budget

    result = formulate([task], check)
    if result.feasible:
        assert task.demand_at(result.values("v")).get(ResourceKind.CPU) <= budget
    else:
        assert result.assignments["v"].at_bottom


@given(st.floats(min_value=50.0, max_value=800.0))
@settings(max_examples=20, deadline=None)
def test_formulation_never_violates_dependencies(budget):
    task = Task(
        task_id="c", request=catalog.video_conference_request(),
        demand_model=workload.conference_demand(),
    )

    def check(assignments):
        demand = task.demand_at(assignments["c"].values())
        return demand.get(ResourceKind.CPU) <= budget

    result = formulate([task], check)
    assert task.request.spec.dependencies.satisfied(result.values("c"))


# -- Resource Manager accounting ------------------------------------------------


@given(st.lists(
    st.tuples(st.sampled_from(["reserve", "release"]),
              st.floats(min_value=0.1, max_value=40.0)),
    max_size=60,
))
def test_manager_invariant_under_interleaving(ops):
    mgr = ResourceManager(Capacity.of(cpu=100.0), name="prop")
    live = []
    for op, amount in ops:
        if op == "reserve":
            r = mgr.try_reserve("h", Capacity.of(cpu=amount))
            if r is not None:
                live.append(r)
        elif live:
            mgr.release(live.pop())
        # Invariants hold after every operation.
        assert mgr.reserved.get(ResourceKind.CPU) <= 100.0 + 1e-9
        assert mgr.reserved + mgr.available == mgr.capacity
    for r in live:
        mgr.release(r)
    assert mgr.reserved.is_zero


# -- Capacity algebra -------------------------------------------------------------


capacities = st.builds(
    lambda c, m, e: Capacity.of(cpu=c, memory=m, energy=e),
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e6),
)


@given(capacities, capacities)
def test_capacity_add_sub_roundtrip(a, b):
    assert (a + b) - b == a


@given(capacities, capacities)
def test_capacity_covers_sum(a, b):
    assert (a + b).covers(a)
    assert (a + b).covers(b)


@given(capacities, st.floats(min_value=0.0, max_value=10.0))
def test_capacity_scaling_linear(a, f):
    scaled = a.scaled(f)
    for kind in a.kinds():
        assert math.isclose(scaled.get(kind), a.get(kind) * f, rel_tol=1e-12,
                            abs_tol=1e-12)


# -- DES engine ordering --------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=50))
def test_engine_fires_in_time_order(delays):
    eng = Engine()
    fired = []
    for d in delays:
        eng.schedule(d, lambda now: fired.append(now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# -- topology symmetry ------------------------------------------------------------


@given(st.lists(
    st.tuples(st.floats(min_value=0, max_value=300),
              st.floats(min_value=0, max_value=300)),
    min_size=2, max_size=12,
))
@settings(max_examples=30, deadline=None)
def test_disc_topology_symmetric_and_distance_consistent(points):
    nodes = [Node(f"n{i}", position=p) for i, p in enumerate(points)]
    topo = Topology(nodes, DiscRadio(range_m=120.0))
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            linked = topo.connected(a.node_id, b.node_id)
            assert linked == topo.connected(b.node_id, a.node_id)
            assert linked == (a.distance_to(b) <= 120.0)

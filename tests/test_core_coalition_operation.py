"""Unit tests for the coalition life cycle and the operation phase."""

from __future__ import annotations

import pytest

from repro.core.coalition import Coalition, CoalitionPhase, TaskAward
from repro.core.negotiation import negotiate
from repro.core.operation import run_operation_phase
from repro.core.proposal import Proposal
from repro.errors import CoalitionStateError
from repro.resources.capacity import Capacity
from repro.services import workload
from repro.sim.engine import Engine


def _award(task_id="t1", node_id="n1", distance=0.1):
    return TaskAward(
        task_id=task_id,
        node_id=node_id,
        proposal=Proposal(task_id=task_id, node_id=node_id, values={}),
        distance=distance,
        comm_cost=0.5,
        demand=Capacity.of(cpu=1),
    )


@pytest.fixture
def service():
    return workload.movie_playback_service(requester="requester")


# -- Coalition life cycle ------------------------------------------------------


def test_phase_transitions(service):
    c = Coalition(service)
    assert c.phase is CoalitionPhase.FORMING
    c.start_operation()
    assert c.phase is CoalitionPhase.OPERATING
    c.dissolve(now=9.0)
    assert c.phase is CoalitionPhase.DISSOLVED
    assert c.dissolved_at == 9.0


def test_invalid_transitions(service):
    c = Coalition(service)
    c.start_operation()
    with pytest.raises(CoalitionStateError):
        c.start_operation()
    c.dissolve()
    with pytest.raises(CoalitionStateError):
        c.dissolve()
    with pytest.raises(CoalitionStateError):
        c.add_award(_award())


def test_members_and_size(service):
    c = Coalition(service)
    tid0 = service.tasks[0].task_id
    tid1 = service.tasks[1].task_id
    c.add_award(_award(task_id=tid0, node_id="a"))
    c.add_award(_award(task_id=tid1, node_id="a"))
    assert c.members == {"a"} and c.size == 1
    c.add_award(_award(task_id=tid1, node_id="b"))  # reallocation
    assert c.members == {"a", "b"} and c.size == 2
    assert c.tasks_on("a") == (tid0,)


def test_complete_and_totals(service):
    c = Coalition(service)
    assert not c.complete
    for task, node in zip(service.tasks, ("a", "b")):
        c.add_award(_award(task_id=task.task_id, node_id=node, distance=0.2))
    assert c.complete
    assert c.total_distance() == pytest.approx(0.4)
    assert c.total_comm_cost() == pytest.approx(1.0)


# -- Operation phase ------------------------------------------------------------


def test_operation_completes_without_failures(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    engine = Engine(seed=5)
    outcome = negotiate(movie_service, topology, providers, commit=True)
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine
    )
    assert report.completed == len(movie_service.tasks)
    assert report.lost == 0
    assert report.reconfigurations == 0
    assert outcome.coalition.phase is CoalitionPhase.DISSOLVED
    # All reservations released at dissolution.
    assert all(p.node.manager.reserved.is_zero for p in providers.values())
    # Tasks completed at their nominal duration.
    for task in movie_service.tasks:
        assert report.outcomes[task.task_id].finished_at == pytest.approx(task.duration)


def test_operation_reconfigures_on_failure(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    engine = Engine(seed=5)
    outcome = negotiate(movie_service, topology, providers, commit=True)
    video_tid = movie_service.tasks[0].task_id
    victim = outcome.coalition.awards[video_tid].node_id
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine,
        failures=[(5.0, victim)],
    )
    assert report.failures_injected == 1
    assert report.reconfigurations == 1
    assert report.completed == len(movie_service.tasks)
    out = report.outcomes[video_tid]
    assert out.status == "completed"
    assert out.reallocations == 1
    assert out.node_id != victim


def test_operation_without_reconfiguration_loses_tasks(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    engine = Engine(seed=5)
    outcome = negotiate(movie_service, topology, providers, commit=True)
    video_tid = movie_service.tasks[0].task_id
    victim = outcome.coalition.awards[video_tid].node_id
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine,
        failures=[(5.0, victim)],
        allow_reconfiguration=False,
    )
    assert report.outcomes[video_tid].status == "lost"
    assert report.reconfigurations == 0


def test_operation_failure_after_completion_is_harmless(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    engine = Engine(seed=5)
    outcome = negotiate(movie_service, topology, providers, commit=True)
    victim = next(iter(outcome.coalition.members))
    max_duration = max(t.duration for t in movie_service.tasks)
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine,
        failures=[(max_duration + 1.0, victim)],
    )
    assert report.completed == len(movie_service.tasks)
    assert report.failures_injected == 0  # no orphaned tasks at crash time


def test_operation_unallocated_tasks_reported_lost(movie_service):
    """A coalition missing an award reports that task as lost."""
    from repro.network.radio import DiscRadio
    from repro.network.topology import Topology
    from repro.resources.node import Node, NodeClass
    from repro.resources.provider import QoSProvider

    nodes = [Node("requester", NodeClass.PHONE, position=(0, 0))]
    topology = Topology(nodes, DiscRadio())
    providers = {"requester": QoSProvider(nodes[0])}
    outcome = negotiate(movie_service, topology, providers, commit=True)
    assert not outcome.success
    engine = Engine(seed=1)
    report = run_operation_phase(outcome.coalition, topology, providers, engine)
    video_tid = movie_service.tasks[0].task_id
    assert report.outcomes[video_tid].status == "lost"
    assert report.completed >= 1  # audio still finishes locally


def test_recovery_rate_metric(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    engine = Engine(seed=5)
    outcome = negotiate(movie_service, topology, providers, commit=True)
    report = run_operation_phase(outcome.coalition, topology, providers, engine)
    assert report.recovery_rate == 1.0  # nothing affected => vacuous 1.0

"""R5 fixture: a switch read twice in one function body (should flag)."""

USE_FAST_PATH = True


def run(tasks):
    if USE_FAST_PATH:
        tasks = [t for t in tasks if t]
    # ... time passes; the global may have been flipped by an override ...
    if USE_FAST_PATH:
        return tasks
    return list(reversed(tasks))

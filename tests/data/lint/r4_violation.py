"""R4 fixture: blanket handlers (both should flag)."""


def swallow(release):
    try:
        release()
    except Exception:
        pass
    try:
        release()
    except:  # noqa: E722
        pass

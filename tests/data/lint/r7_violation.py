"""R7 fixture: unbounded retry loops (both should flag)."""


def pump(channel, src, dst):
    while True:
        latency = channel.transmit(src, dst, 1.0)
        if latency is not None:
            return latency


def insist(negotiate, service, topology, providers):
    while 1:
        outcome = negotiate(service, topology, providers)
        if outcome.success:
            return outcome

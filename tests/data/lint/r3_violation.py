"""R3 fixture: hash-ordered iteration (each loop should flag)."""


def broadcast(node_ids, ledger):
    audience = set(node_ids)
    for node in audience:
        yield node
    for name in {"alpha", "beta"}:
        yield name
    for key in ledger.keys():
        yield key
    return [n for n in frozenset(node_ids)]

"""R6 fixture: arena mutation without an epoch bump (should flag)."""


class MiniTopology:
    def __init__(self):
        self._epoch = 0
        self.positions = []
        self._adj = []

    def _bump_epoch(self):
        self._epoch += 1

    def rebuild(self):
        self.positions = []
        self._adj = []
        self._bump_epoch()

    def sneak_move(self, i, xy):
        # Mutates the arena but never bumps: cached routes go stale.
        self.positions[i] = xy

    def sneak_alias(self, i, xy):
        pos = self.positions
        pos[i] = xy

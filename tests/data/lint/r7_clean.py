"""R7 fixture: bounded retries and non-retry loops (no findings)."""


def pump(channel, src, dst, policy):
    # for-range loops are bounded by construction.
    for _ in range(policy.max_attempts):
        latency = channel.transmit(src, dst, 1.0)
        if latency is not None:
            return latency
    return None


def careful(channel, src, dst, max_attempts):
    # while-True with an explicit attempt budget is evidence enough.
    attempts = 0
    while True:
        if channel.transmit(src, dst, 1.0) is not None:
            return True
        attempts += 1
        if attempts >= max_attempts:
            return False


def conditioned(negotiate, service, topology, providers, budget):
    # A real loop condition is its own bound.
    while budget > 0:
        outcome = negotiate(service, topology, providers)
        if outcome.success:
            return outcome
        budget -= 1
    return None


def spin(jobs):
    # while-True without a retry-ish call is not a retry loop.
    while True:
        if not jobs:
            return
        jobs.pop()

"""R2 fixture: host-clock reads (linted as a repro.sim module)."""

import time
from datetime import datetime


def stamp(events):
    started = time.perf_counter()
    events.append((datetime.now(), time.time()))
    return time.perf_counter() - started

"""R1 fixture: the sanctioned seeded-generator idiom (no findings)."""

import numpy as np


def jitter(rng: np.random.Generator, width):
    return rng.random() * width


def make_rng(seed):
    return np.random.Generator(np.random.PCG64(seed))


def make_default(seed):
    return np.random.default_rng(seed)

"""R4 fixture: handlers name what they absorb (no findings)."""


def tolerate(release):
    try:
        release()
    except (KeyError, ValueError):
        pass
    try:
        release()
    except BaseException:  # deliberate relay boundary, not flagged
        raise

"""R2 fixture: simulated time comes from the engine (no findings)."""


def stamp(engine, events):
    started = engine.now
    events.append((engine.now, engine.now))
    return engine.now - started

"""R3 fixture: canonical or insertion order everywhere (no findings)."""


def broadcast(node_ids, ledger):
    audience = set(node_ids)
    for node in sorted(audience):
        yield node
    for key in ledger:  # dict: deterministic insertion order
        yield key
    for index in {0, 1, 2}:  # int-only set: value-stable hashing
        yield index
    if "gateway" in audience:  # membership tests are order-free
        yield "gateway"
    return sorted(frozenset(node_ids))

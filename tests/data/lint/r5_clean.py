"""R5 fixture: snapshot-once semantics (no findings)."""

USE_FAST_PATH = True


def run(tasks):
    use_fast = USE_FAST_PATH  # snapshot at entry
    if use_fast:
        tasks = [t for t in tasks if t]
    if use_fast:
        return tasks
    return list(reversed(tasks))


def other(tasks):
    # A *different* function body may read the switch again.
    return tasks if USE_FAST_PATH else list(reversed(tasks))

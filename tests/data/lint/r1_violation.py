"""R1 fixture: module-level RNG draws (every line here should flag)."""

import random

import numpy as np


def jitter(width):
    base = random.random() * width
    pick = np.random.choice([1, 2, 3])
    rng = np.random.default_rng()
    return base + pick + rng.random()

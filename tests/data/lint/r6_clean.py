"""R6 fixture: every arena mutation bumps, directly or transitively."""


class MiniTopology:
    def __init__(self):
        self._epoch = 0
        self.positions = []
        self._adj = []
        self.rebuild()  # transitively bumping

    def _bump_epoch(self):
        self._epoch += 1

    def rebuild(self):
        self.positions = []
        self._adj = []
        self._bump_epoch()

    def move(self, i, xy):
        self.positions[i] = xy
        self._bump_epoch()

    def refresh(self):
        self._adj = []
        self.rebuild()  # calls a bumping method

    def read_only(self):
        return len(self.positions)  # reads never need a bump

"""E22 — sharded cluster simulation at scale (repro.shard).

Perf-trajectory suite: the streaming contention workload at 512–4096
nodes on spatially partitioned shards. Every metric column except
``sessions/s (wall)`` is deterministic; the wall-clock throughput column
is reported and trended but exempt from the exact CI gates
(``tools/bench_diff.py --wall-columns``).

The second test is the acceptance gate for the delta-rebuild path
itself: a mobility tick that moved a handful of nodes must update the
1024-node distance/adjacency arenas at least 5x faster than a full
``rebuild()``, with both paths leaving bit-identical arrays.
"""

import time

import numpy as np

from benchmarks.conftest import run_suite
from repro.experiments.suites import e22_shard_scale
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.node import Node


def test_e22_shard_scale(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e22_shard_scale, sweep, results_dir, "E22")
    labels = table.column("nodes × shards")
    offered = [s.mean for s in table.column("offered sessions")]
    success = [s.mean for s in table.column("success rate")]
    throughput = [s.mean for s in table.column("sessions/s (wall)")]
    # Real load and healthy admission at every scale.
    assert all(o > 0.0 for o in offered), labels
    assert all(s > 0.5 for s in success), labels
    # The sharded simulator must not fall off a super-linear cliff: 8x
    # more nodes (and ~8x more offered sessions) may cost per-session
    # throughput, but it has to stay within one order of magnitude of
    # the best size.
    assert min(throughput) > max(throughput) / 10.0, dict(zip(labels, throughput))


def _fleet(n=1024, seed=7):
    rng = np.random.default_rng(seed)
    area = 60.0 * float(np.sqrt(n))
    return [
        Node(
            f"n{i}",
            position=(float(rng.uniform(0, area)), float(rng.uniform(0, area))),
        )
        for i in range(n)
    ]


def test_delta_rebuild_5x_at_1024_nodes():
    """Acceptance gate: a 16-mover delta rebuild >= 5x a full rebuild."""
    topo = Topology(_fleet(), DiscRadio(range_m=100.0))
    movers = [f"n{i}" for i in range(16)]
    for nid in movers:
        x, y = topo.node(nid).position
        topo.node(nid).move_to(x + 1.5, y - 0.5)

    # Same arenas first — speed means nothing otherwise.
    topo.update_positions(movers)
    after_delta = (
        topo._dist.copy(), topo._adj.copy(), topo._bw.copy(), topo._loss.copy()
    )
    topo.rebuild()
    assert np.array_equal(after_delta[0], topo._dist, equal_nan=True)
    assert np.array_equal(after_delta[1], topo._adj)
    assert np.array_equal(after_delta[2], topo._bw, equal_nan=True)
    assert np.array_equal(after_delta[3], topo._loss, equal_nan=True)

    def best_of(fn, reps=7):
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    t_full = best_of(topo.rebuild)
    t_delta = best_of(lambda: topo.update_positions(movers))
    assert t_full >= 5.0 * t_delta, (
        f"delta rebuild only {t_full / t_delta:.1f}x faster "
        f"(full {t_full * 1e3:.2f} ms, delta {t_delta * 1e3:.2f} ms)"
    )

"""E18 — scale sweep: the negotiation hot path at large audiences.

E4's agent-based scenario at 16–128 nodes — the regime where the
pre-batching simulator spent its wall time in per-proposal evaluation
and per-node reformulation (docs/performance.md). The table's metrics
are deterministic; the wall time lands in ``BENCH_E18.json`` via the
CLI, and CI diffs a fresh full sweep against the committed snapshot
(``bench_diff --rtol 0 --wall-rtol 4.0``: exact metrics, coarse wall
gate). Expected shape: same protocol behaviour as E4, just bigger —
messages stay ~linear in the audience, simulated time stays bounded by
the protocol constants, success stays high.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e18_scale_sweep


def test_e18_scale_sweep(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e18_scale_sweep, sweep, results_dir, "E18")
    nodes = table.column("nodes")
    messages = [s.mean for s in table.column("messages")]
    times = [s.mean for s in table.column("sim time (s)")]
    successes = [s.mean for s in table.column("success")]
    growth = messages[-1] / messages[0]
    node_growth = nodes[-1] / nodes[0]
    assert growth <= node_growth * 2.0, "message growth must stay ~linear"
    assert max(times) < 2.0, "sim time bounded by protocol constants"
    assert min(successes) > 0.5

"""E8 — operation-phase failure recovery.

Paper claim (§4): the operation phase includes "the coalition
reconfiguration due to partial failures". Expected shape: with
reconfiguration enabled, task completion stays near 1.0 under member
crashes; with it disabled, completion collapses as failures increase.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e8_failure_recovery


def test_e8_failure_recovery(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e8_failure_recovery, sweep, results_dir, "E8")
    for row in table.rows:
        failures, with_reconfig, without = row[0], row[1].mean, row[2].mean
        assert with_reconfig >= without - 1e-9
        if failures == 0:
            assert with_reconfig == 1.0 and without == 1.0
    # At >= 1 failure the gap must be material.
    failed_rows = [r for r in table.rows if r[0] >= 1]
    assert any(r[1].mean - r[2].mean > 0.3 for r in failed_rows)

"""E23 — fault injection: availability, recovery, degraded vs dropped.

The streaming contention workload at 512 nodes under declarative
:class:`~repro.faults.plan.FaultPlan` regimes: Gilbert–Elliott burst
loss on every negotiation radio leg, scheduled partitions of 10 s
(heals inside the 15 s partition-grace window) or 25 s (outlives it),
and an optional crash hazard. The assertions pin the qualitative shape
the hardening must produce: fault-free regimes sit at full
availability; partitions degrade sessions; a heal inside the grace
window recovers sessions in place (recoveries > 0); availability never
collapses even in the harshest regime.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e23_fault_sweep


def test_e23_fault_sweep(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e23_fault_sweep, sweep, results_dir, "E23")
    labels = table.column("fault regime")
    availability = [s.mean for s in table.column("availability")]
    degraded = [s.mean for s in table.column("degraded sessions")]
    retries = [s.mean for s in table.column("award retries")]
    rows = dict(zip(labels, zip(availability, degraded, retries)))

    # Availability is a fraction everywhere and never collapses: the
    # bounded retry/backoff handshake keeps sessions landing even under
    # bursty loss plus a 25 s partition.
    assert all(0.5 < a <= 1.0 for a in availability), rows
    # Partition regimes actually degrade sessions ...
    partitioned = [lab for lab in rows if "part" in lab]
    assert partitioned and all(rows[lab][1] > 0.0 for lab in partitioned), rows
    # ... and cost availability relative to their partition-free sibling.
    for lab in partitioned:
        base = lab.split("-part")[0]
        if base in rows:
            assert rows[lab][0] < rows[base][0], (lab, rows)
    # Bursty links make award handshakes retry; calm links rarely do.
    bursty = [lab for lab in rows if lab.startswith("bursty")]
    assert bursty and all(rows[lab][2] > 0.0 for lab in bursty), rows

"""E10 — offloading economics.

Paper claim (§1, §7): processing locally on the mobile device "may suffer
time penalty and, possibly, battery energy loss"; spreading tasks to
nearby devices with spare resources pays off. Expected shape: with any
laptop neighbor available, the requester's energy cost drops (transfer
energy « execution energy) while utility does not decrease.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e10_offloading


def test_e10_offloading(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e10_offloading, sweep, results_dir, "E10")
    for row in table.rows:
        neighbors = row[0]
        local_energy, coal_energy = row[1].mean, row[2].mean
        local_u, coal_u = row[4].mean, row[5].mean
        if neighbors > 0:
            assert coal_energy < local_energy, "offloading must save energy"
            assert coal_u >= local_u - 1e-9, "offloading must not hurt quality"
        else:
            assert coal_energy == local_energy  # nobody to offload to

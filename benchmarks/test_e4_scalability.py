"""E4 — protocol scalability with neighborhood size.

Paper claim (§1, §4.2): the decentralized protocol works without a
central authority and the negotiation stays cheap: one CFP broadcast, one
proposal per willing node, one award per task. Expected shape: messages
grow linearly in the node count; negotiation (simulated) time is bounded
by the proposal window plus award round-trips, roughly constant.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e4_scalability


def test_e4_scalability(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e4_scalability, sweep, results_dir, "E4")
    nodes = table.column("nodes")
    messages = [s.mean for s in table.column("messages")]
    times = [s.mean for s in table.column("sim time (s)")]
    # Linear-ish growth: messages scale with n, far below quadratic.
    growth = messages[-1] / messages[0]
    node_growth = nodes[-1] / nodes[0]
    assert growth <= node_growth * 2.0, "message growth must stay ~linear"
    # Time bounded by the protocol constants, not the node count.
    assert max(times) < 2.0
    successes = [s.mean for s in table.column("success")]
    assert min(successes) > 0.5

"""F1–F3 — trend figures rendered from the experiment sweeps.

The paper contains no figures; these charts are the harness's figure-
style artifacts, regenerated from the same sweeps as the tables:

* **F1** — coalition vs single-node utility over neighborhood size (E1);
* **F2** — protocol messages over node count (E4);
* **F3** — coalition gain over capacity heterogeneity (E7).
"""

from benchmarks.conftest import run_suite
from repro.experiments.figures import figure_from_table
from repro.experiments.suites import (
    e1_coalition_vs_single,
    e4_scalability,
    e7_heterogeneity,
)


def _archive(chart, results_dir, name: str) -> None:
    text = chart.render()
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def test_f1_utility_vs_nodes(benchmark, sweep, results_dir):
    table = benchmark.pedantic(
        e1_coalition_vs_single, args=(sweep,), rounds=1, iterations=1
    )
    chart = figure_from_table(
        table, "nodes", ["single utility", "coalition utility"],
        title="F1 — utility vs neighborhood size (movie, phone requester)",
        y_label="mean utility",
    )
    _archive(chart, results_dir, "F1")
    text = chart.render()
    assert "coalition utility" in text and "single utility" in text


def test_f2_messages_vs_nodes(benchmark, sweep, results_dir):
    table = benchmark.pedantic(
        e4_scalability, args=(sweep,), rounds=1, iterations=1
    )
    chart = figure_from_table(
        table, "nodes", ["messages", "proposals"],
        title="F2 — protocol cost vs node count (agent-based)",
        y_label="count",
    )
    _archive(chart, results_dir, "F2")
    assert "messages" in chart.render()


def test_f3_gain_vs_heterogeneity(benchmark, sweep, results_dir):
    table = benchmark.pedantic(
        e7_heterogeneity, args=(sweep,), rounds=1, iterations=1
    )
    chart = figure_from_table(
        table, "cpu spread", ["solo utility", "coalition utility", "gain"],
        title="F3 — coalition gain vs capacity heterogeneity",
        y_label="utility / gain",
    )
    _archive(chart, results_dir, "F3")
    assert "gain" in chart.render()

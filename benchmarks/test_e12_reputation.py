"""E12 — reputation-aware selection (trust extension).

The paper's related work embraces trust-based coalition formation
(Breban & Vassileva [4]); this extension feeds operation-phase failure
observations into partner selection. Expected shape: against flaky
helpers, the reputation-aware policy routes awards away from them and
lifts first-try completion well above the memoryless protocol,
especially in the later (post-learning) rounds.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e12_reputation


def test_e12_reputation(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e12_reputation, sweep, results_dir, "E12")
    rows = {row[0]: row for row in table.rows}
    paper = rows["paper (no memory)"]
    aware = rows["reputation-aware"]
    assert aware[1].mean > paper[1].mean, "reputation must lift completion"
    assert aware[2].mean >= aware[1].mean - 1e-9, "learning must not regress"
    assert aware[3].mean < paper[3].mean, "flaky nodes must lose awards"

"""E20 — streaming sessions under churn (the repro.sessions driver).

Admitted coalitions run their operation phase *inside* the contention
window: helper crashes and per-award streaming drain orphan tasks
mid-session, and orphans renegotiate in place against the currently
contended cluster. The sweep crosses mobility model × per-requester
arrival rate × session-length multiplier; the assertions pin the
qualitative shape the lifecycle model must produce.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e20_streaming_sessions


def test_e20_streaming_sessions(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e20_streaming_sessions, sweep, results_dir, "E20")
    labels = table.column("mobility × rate × length")
    success = [s.mean for s in table.column("success rate")]
    sustained = [s.mean for s in table.column("sustained utility")]
    reneg = [s.mean for s in table.column("renegotiation rate")]
    rows = dict(zip(labels, zip(success, sustained, reneg)))

    # Streaming keeps working under churn at every point ...
    assert all(s > 0.5 for s in success), labels
    # ... but churn costs utility: sustained < 1 everywhere (crashes and
    # drain are always on in the streaming-mix scenario).
    assert all(0.0 < u < 1.0 for u in sustained), labels
    # Longer sessions see more churn: the x2 rows renegotiate more than
    # their x1 siblings for every mobility × rate combination.
    for mobility in ("static", "waypoint"):
        for rate in ("60s", "30s"):
            short = rows[f"{mobility}-{rate}-x1"][2]
            long = rows[f"{mobility}-{rate}-x2"][2]
            assert long > short, (mobility, rate, short, long)

"""Shared benchmark fixtures.

Every experiment benchmark runs its E-suite once (rounds=1 — these are
simulation experiments, not micro-benchmarks), prints the result table,
and archives it under ``benchmarks/results/`` so EXPERIMENTS.md can be
rebuilt from the exact artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.config import SweepConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def sweep() -> SweepConfig:
    """Full sweep settings for the experiment benchmarks."""
    return SweepConfig(seeds=(1, 2, 3, 4, 5, 6, 7, 8))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_suite(benchmark, suite, sweep, results_dir, name: str):
    """Run one experiment suite under the benchmark harness and archive
    its table."""
    table = benchmark.pedantic(suite, args=(sweep,), rounds=1, iterations=1)
    text = table.render()
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    return table

"""E2 — the eqs. 2–5 evaluator picks proposals closest to preferences.

Paper claim (§6): "The best proposal is the one that presents the lowest
evaluation, since it is the one that contains the attributes' values more
closely related to user's preferences." Expected shape: zero regret vs
the pool's best proposal at every pool size; random picks trail.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e2_evaluation_quality


def test_e2_evaluation_quality(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e2_evaluation_quality, sweep, results_dir, "E2")
    regrets = [s.mean for s in table.column("regret vs best")]
    assert all(abs(r) < 1e-9 for r in regrets), "eq.2 winner must equal pool best"
    winners = [s.mean for s in table.column("eq.2 winner utility")]
    randoms = [s.mean for s in table.column("random pick utility")]
    assert all(w >= r - 1e-9 for w, r in zip(winners, randoms))

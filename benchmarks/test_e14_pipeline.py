"""E14 — precedence pipelines (extension of §4.1's independent tasks).

The paper scopes services to "a set (for now) of independent tasks"; this
extension adds precedence edges honoured by the operation phase. Expected
shape: a failure-free pipeline's makespan equals its critical path; a
mid-stage crash is reconfigured, completing everything with a makespan
extended by the restarted stage.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e14_pipeline


def test_e14_pipeline(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e14_pipeline, sweep, results_dir, "E14")
    rows = {row[0]: row for row in table.rows}
    clean, failed = rows[0], rows[1]
    assert clean[1].mean == 1.0 and failed[1].mean == 1.0
    # Failure-free makespan equals the critical path exactly.
    assert abs(clean[2].mean - clean[3].mean) < 1e-9
    # One mid-stage crash costs extra time but stays bounded by one
    # full stage restart on top of the critical path.
    assert failed[2].mean > failed[3].mean
    assert failed[2].mean <= failed[3].mean + 8.0 + 1e-9
    assert failed[4].mean == 1.0

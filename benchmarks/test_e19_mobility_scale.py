"""E19 — mobility at scale (vectorized network layer).

Perf-trajectory suite: E5's mobility scenario at 32–128 nodes under two
mobility models with relayed two-hop CFPs. Every simulated second the
fleet moves and the topology is rebuilt — the workload the numpy
position arena + epoch-cached routing exist for. The table's metrics are
deterministic; wall time lives in ``BENCH_E19.json``.

The second test is the acceptance gate for the vectorization itself:
topology maintenance (rebuild + the CFP's route-cost queries) at 128
nodes must be at least 5x faster on the vector path than on the legacy
networkx path, with both paths producing identical answers.
"""

import time

import numpy as np

import repro.network.topology as topology_mod
from benchmarks.conftest import run_suite
from repro.experiments.suites import e19_mobility_scale
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.node import Node


def test_e19_mobility_scale(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e19_mobility_scale, sweep, results_dir, "E19")
    labels = table.column("model × nodes")
    success = [s.mean for s in table.column("success rate")]
    partners = [s.mean for s in table.column("distinct partners")]
    # Coalitions must keep forming at every scale under churn ...
    assert all(s > 0.0 for s in success), labels
    # ... and mobility must expose more than a lone partner somewhere.
    assert max(partners) > 1.0


def _maintenance_workload(topo, rounds=3):
    """One mobility tick's worth of topology work: a rebuild plus the
    CFP-style queries the organizer issues against it — the two-hop
    audience, then the route-cost tie-break per candidate per task.

    Several rounds query the *same* pairs, as the per-task scoring
    passes and award routing within one epoch do — the vector path
    answers repeats from the per-epoch cache, the legacy path re-runs
    networkx Dijkstra every time.
    """
    topo.rebuild()
    audience = topo.khop_neighbors("n0", 2)
    acc = 0.0
    for _ in range(rounds):
        for nid in audience:
            acc += topo.multihop_cost("n0", nid)
    return acc


def _build(vectorized, n=128, spread=140.0, seed=5):
    """The E19 ``group-128`` regime: the whole fleet within one group
    spread of the leader — the dense pairwise-recompute workload the
    paper's spontaneous-coalition setting implies at scale."""
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(n):
        angle = rng.uniform(0, 2 * np.pi)
        radius = rng.uniform(0, spread)
        nodes.append(Node(
            f"n{i}",
            position=(340.0 + radius * np.cos(angle), 340.0 + radius * np.sin(angle)),
        ))
    old = topology_mod.USE_VECTOR_TOPOLOGY
    topology_mod.USE_VECTOR_TOPOLOGY = vectorized
    try:
        topo = Topology(nodes, DiscRadio(range_m=100.0))
    finally:
        topology_mod.USE_VECTOR_TOPOLOGY = old
    return topo


def test_topology_maintenance_5x_at_128_nodes():
    """Acceptance gate: rebuild + multihop routing >= 5x at 128 nodes."""
    topo_vec = _build(vectorized=True)
    topo_leg = _build(vectorized=False)
    # Same answers first — speed means nothing otherwise.
    assert _maintenance_workload(topo_vec) == _maintenance_workload(topo_leg)

    def best_of(topo, reps=5):
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            _maintenance_workload(topo)
            best = min(best, time.perf_counter() - start)
        return best

    t_vec = best_of(topo_vec)
    t_leg = best_of(topo_leg)
    assert t_leg >= 5.0 * t_vec, (
        f"vectorized topology maintenance only {t_leg / t_vec:.1f}x faster "
        f"(legacy {t_leg * 1e3:.1f} ms, vector {t_vec * 1e3:.1f} ms)"
    )

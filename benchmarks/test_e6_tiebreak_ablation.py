"""E6 — selection tie-break ablation.

Paper claim (§4.2): the coalition prefers, after the lowest evaluation
value, the lowest communication cost and the fewest distinct members.
Expected shape: all policies tie on distance (tie-breaks only fire on
distance ties); adding the comm-cost criterion lowers comm cost; the full
triple also keeps the coalition at least as small as comm-cost alone.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e6_tiebreak_ablation


def test_e6_tiebreak_ablation(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e6_tiebreak_ablation, sweep, results_dir, "E6")
    rows = {row[0]: row for row in table.rows}
    distance_only = rows["distance only"]
    full = rows["full triple (paper)"]
    with_comm = rows["+ comm cost"]
    # Same QoS distance everywhere — tie-breaks never sacrifice quality.
    distances = [row[1].mean for row in table.rows]
    assert max(distances) - min(distances) < 1e-6
    # Comm-cost criterion pays off.
    assert with_comm[2].mean <= distance_only[2].mean + 1e-9
    assert full[2].mean <= distance_only[2].mean + 1e-9
    # The full triple keeps coalitions no larger than comm-cost alone.
    assert full[3].mean <= with_comm[3].mean + 1e-9

"""Micro-benchmarks of the hot paths (proper pytest-benchmark usage).

These quantify the per-operation costs the E-suites are built on:
eq. 2 proposal evaluation, the Section 5 formulation heuristic, the full
synchronous negotiation, DES event throughput, and topology rebuilds.
"""

from __future__ import annotations

import pytest

from repro.core.evaluation import ProposalEvaluator
from repro.core.formulation import formulate
from repro.core.negotiation import negotiate
from repro.core.proposal import Proposal
from repro.experiments.config import ClusterConfig
from repro.experiments.scenario import build_cluster
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.qos import catalog
from repro.qos.catalog import COLOR_DEPTH, FRAME_RATE, SAMPLE_BITS, SAMPLING_RATE
from repro.resources.kinds import ResourceKind
from repro.resources.node import Node
from repro.services import workload
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


def test_bench_evaluation_distance(benchmark):
    request = catalog.surveillance_request()
    evaluator = ProposalEvaluator(request)
    proposal = Proposal(
        task_id="t", node_id="n",
        values={FRAME_RATE: 7, COLOR_DEPTH: 1, SAMPLING_RATE: 8, SAMPLE_BITS: 8},
    )
    result = benchmark(evaluator.distance, proposal)
    assert result > 0.0


def test_bench_formulation_heuristic(benchmark):
    service = workload.movie_playback_service(requester="r")
    task = service.tasks[0]

    def check(assignments):
        return task.demand_at(
            assignments[task.task_id].values()
        ).get(ResourceKind.CPU) <= 150.0

    result = benchmark(lambda: formulate([task], check))
    assert result.feasible


def test_bench_full_negotiation_8_nodes(benchmark):
    topology, providers, nodes, _ = build_cluster(ClusterConfig(n_nodes=8), seed=1)
    service = workload.movie_playback_service(requester="requester")

    outcome = benchmark(
        lambda: negotiate(service, topology, providers, commit=False)
    )
    assert outcome.success


def test_bench_engine_event_throughput(benchmark):
    def run_10k_events():
        eng = Engine()
        remaining = [10_000]

        def tick(now):
            remaining[0] -= 1
            if remaining[0] > 0:
                eng.schedule(0.001, tick)

        eng.schedule(0.001, tick)
        eng.run()
        return eng.events_fired

    fired = benchmark(run_10k_events)
    assert fired == 10_000


def test_bench_topology_rebuild_64_nodes(benchmark):
    rng = RngRegistry(1).stream("p")
    nodes = [
        Node(f"n{i}", position=(float(rng.uniform(0, 300)), float(rng.uniform(0, 300))))
        for i in range(64)
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    benchmark(topology.rebuild)
    assert len(topology) == 64

"""E9 — eq. 3 weight-scheme ablation.

Paper claim (§6, eq. 3): positional weights encode the user's qualitative
importance order. Expected shape: on symmetric antagonistic proposal
pairs, positional schemes (linear, geometric) always protect the most
important dimension; uniform weights are indifferent (here arranged to
pick the wrong proposal on ties, i.e. 0%).
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e9_weight_ablation


def test_e9_weight_ablation(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e9_weight_ablation, sweep, results_dir, "E9")
    by_scheme = {row[0]: row[1].mean for row in table.rows}
    assert by_scheme["linear (paper)"] == 100.0
    assert by_scheme["geometric"] == 100.0
    assert by_scheme["uniform"] == 0.0

"""E7 — capacity heterogeneity.

Paper claim (§7): "various groups of nodes may have different degrees of
efficiency in service execution performance due to different capabilities
of their members". Expected shape: with the mean CPU fixed, increasing
the capacity spread increases the coalition's utility advantage over solo
execution (stronger outliers exist for the coalition to recruit).
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e7_heterogeneity


def test_e7_heterogeneity(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e7_heterogeneity, sweep, results_dir, "E7")
    spreads = table.column("cpu spread")
    gains = [s.mean for s in table.column("gain")]
    # Coalition never hurts, and heterogeneity widens the gain.
    assert all(g >= -1e-9 for g in gains)
    assert gains[-1] > gains[0], "higher spread must widen the coalition gain"
    successes = [s.mean for s in table.column("coalition success")]
    assert min(successes) > 0.5

"""E13 — battery-aware selection (network-lifetime extension).

The paper motivates cooperation with battery savings (§1, §7); this
extension spreads the drain across helpers. Expected shape: equal total
service (energy conservation), but far better balance — higher Jain
fairness and a higher minimum residual battery at the checkpoint.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e13_battery_lifetime


def test_e13_battery(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e13_battery_lifetime, sweep, results_dir, "E13")
    rows = {row[0]: row for row in table.rows}
    paper = rows["paper triple"]
    aware = rows["battery-aware"]
    assert aware[1].mean > paper[1].mean, "battery criterion must even the drain"
    assert aware[2].mean > paper[2].mean, "minimum residual must rise"
    # Energy conservation: total service extracted is policy-invariant.
    assert abs(aware[3].mean - paper[3].mean) <= 2.0

"""E5 — mobility and opportunism.

Paper claim (§1): nodes cooperate "opportunistically taking advantage of
the local ad-hoc network that is created spontaneously, as nodes move in
range of each other". Expected shape: with static placement an isolated
requester stays isolated (low success for unlucky seeds); mobility brings
more distinct candidates into range over time (candidates and distinct
partners grow with speed), at the cost of more in-flight message loss.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e5_mobility


def test_e5_mobility(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e5_mobility, sweep, results_dir, "E5")
    speeds = table.column("speed (m/s)")
    partners = [s.mean for s in table.column("distinct partners")]
    static_partners = partners[speeds.index(0.0)]
    moving_partners = max(p for sp, p in zip(speeds, partners) if sp > 0)
    assert moving_partners > static_partners, (
        "mobility must expose more distinct coalition partners"
    )

"""E11 — relayed CFP (multi-hop extension).

Extension of the paper's scope (§1 keeps larger fixed infrastructures in
scope; the described broadcast is one-hop). Expected shape: in a sparse
network, raising the hop budget strictly grows the candidate audience and
never lowers success/utility, at the price of more protocol messages.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e11_multihop


def test_e11_multihop(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e11_multihop, sweep, results_dir, "E11")
    candidates = [s.mean for s in table.column("candidates")]
    utilities = [s.mean for s in table.column("utility")]
    messages = [s.mean for s in table.column("messages")]
    assert all(candidates[i] <= candidates[i + 1] + 1e-9
               for i in range(len(candidates) - 1))
    assert candidates[-1] > candidates[0], "relaying must widen the audience"
    assert utilities[-1] >= utilities[0] - 1e-9
    assert messages[-1] > messages[0], "flooding costs messages"

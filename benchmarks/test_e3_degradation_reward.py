"""E3 — the Section 5 degradation heuristic under rising load.

Paper claim (§5, eq. 1): degrading the attribute with the minimum local
reward decrease preserves more reward than uninformed degradation.
Expected shape: paper reward >= random/round-robin reward at every load,
with the gap widening as load rises; utility follows the same order.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e3_degradation_reward


def test_e3_degradation_reward(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e3_degradation_reward, sweep, results_dir, "E3")
    for row in table.rows:
        fraction, paper, random_, rr = row[0], row[1].mean, row[2].mean, row[3].mean
        assert paper >= random_ - 1e-9, f"paper < random at fraction {fraction}"
        assert paper >= rr - 1e-9, f"paper < round-robin at fraction {fraction}"
    # Under real load the paper's strategy is strictly better.
    loaded = [r for r in table.rows if r[0] < 1.0]
    assert any(r[1].mean > r[2].mean + 0.1 for r in loaded)

"""E21 — realistic arrival streams (diurnal / flash crowd vs Poisson).

The ``diurnal-mix`` and ``flash-crowd`` scenarios drive streaming
sessions with inhomogeneous Poisson arrivals, next to a homogeneous
control rate-matched to the diurnal shape's mean. Equal requester
counts offer the same *expected* load; the assertions pin the
qualitative effect of arrival clustering on admission and sustained
delivery.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e21_realistic_arrivals


def test_e21_realistic_arrivals(benchmark, sweep, results_dir):
    table = run_suite(
        benchmark, e21_realistic_arrivals, sweep, results_dir, "E21"
    )
    labels = table.column("shape × requesters")
    offered = [s.mean for s in table.column("offered sessions")]
    success = [s.mean for s in table.column("success rate")]
    rows = dict(zip(labels, zip(offered, success)))

    # Every shape generates real load at every requester count.
    assert all(o > 0.0 for o in offered), labels
    # More requesters, more offered sessions, within every shape.
    for shape in ("poisson", "diurnal", "flash-crowd"):
        assert rows[f"{shape}-4req"][0] > rows[f"{shape}-2req"][0], shape
    # The flash crowd concentrates its load in one burst, so at the
    # contended requester count its admission success falls below the
    # rate-matched Poisson control's.
    assert rows["flash-crowd-4req"][1] < rows["poisson-4req"][1], rows
    # Nothing collapses outright: even the burst keeps a majority of
    # sessions admitted.
    assert all(s > 0.5 for s in success), labels

"""E1 — coalition vs single node across neighborhood sizes.

Paper claim (§1, §4.1): coalition formation is necessary when a single
node cannot execute a service. Expected shape: the phone-class requester
alone never serves the movie workload (success 0); coalitions succeed and
their utility grows with neighborhood size.
"""

from benchmarks.conftest import run_suite
from repro.experiments.suites import e1_coalition_vs_single


def test_e1_coalition_vs_single(benchmark, sweep, results_dir):
    table = run_suite(benchmark, e1_coalition_vs_single, sweep, results_dir, "E1")
    singles = [s.mean for s in table.column("single success")]
    coalitions = [s.mean for s in table.column("coalition success")]
    assert max(singles) == 0.0, "a phone must not serve the movie alone"
    assert min(coalitions) > 0.5, "coalitions must mostly succeed"
    utilities = [s.mean for s in table.column("coalition utility")]
    assert utilities[-1] >= utilities[0] - 1e-6, "utility grows with nodes"

#!/usr/bin/env python3
"""Docs tree checker (CI gate).

Two checks, stdlib only:

1. **Dead relative links** — every markdown link or image in ``docs/``
   and ``README.md`` whose target is a relative path must resolve to an
   existing file (anchors and external URLs are skipped).
2. **CLI flag coverage** — ``docs/cli.md`` must mention every option
   string declared by ``add_argument`` in each checked CLI module
   (``src/repro/experiments/__main__.py``, ``tools/bench_diff.py``,
   ``tools/profile_negotiation.py`` and ``tools/lint_repro.py``), so the
   flag reference cannot silently drift from the argparse definitions.

Exit code 0 when both pass; 1 with a per-finding report otherwise.
Run locally as ``python tools/check_docs.py``.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
CLI_DOC = DOCS / "cli.md"

#: CLI modules whose argparse option strings ``docs/cli.md`` must cover.
CLI_SOURCES = (
    REPO / "src" / "repro" / "experiments" / "__main__.py",
    REPO / "tools" / "bench_diff.py",
    REPO / "tools" / "profile_negotiation.py",
    REPO / "tools" / "lint_repro.py",
)

#: Markdown inline links/images: [text](target) / ![alt](target).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def iter_doc_files() -> list[Path]:
    files = sorted(DOCS.glob("**/*.md")) if DOCS.is_dir() else []
    readme = REPO / "README.md"
    if readme.is_file():
        files.append(readme)
    return files


def check_relative_links() -> list[str]:
    """Dead relative links across the docs tree and README."""
    problems = []
    for doc in iter_doc_files():
        in_fence = False
        for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:  # code blocks may contain link-shaped syntax
                continue
            for target in LINK_RE.findall(line):
                if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                    continue
                if target.startswith("#"):  # in-page anchor
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    rel = doc.relative_to(REPO)
                    problems.append(
                        f"{rel}:{lineno}: dead relative link {target!r} "
                        f"(resolved to {resolved})"
                    )
    return problems


def argparse_flags(source: Path) -> list[str]:
    """Every option string passed to ``add_argument`` in one CLI module."""
    tree = ast.parse(source.read_text(), filename=str(source))
    flags = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"):
            continue
        for arg in node.args:
            if (isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                    and arg.value.startswith("-")):
                flags.append(arg.value)
    return flags


def check_cli_flags() -> list[str]:
    """docs/cli.md must mention every checked module's option strings."""
    if not CLI_DOC.is_file():
        return [f"{CLI_DOC.relative_to(REPO)}: missing (CLI flag reference)"]
    text = CLI_DOC.read_text()
    problems = []
    for source in CLI_SOURCES:
        flags = argparse_flags(source)
        if not flags:
            problems.append(
                f"{source.relative_to(REPO)}: no argparse flags found "
                "(checker out of sync with the CLI?)"
            )
            continue
        problems.extend(
            f"{CLI_DOC.relative_to(REPO)}: flag {flag!r} from "
            f"{source.relative_to(REPO)} is not documented"
            for flag in flags
            if flag not in text
        )
    return problems


def main() -> int:
    problems = check_relative_links() + check_cli_flags()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} docs problem(s) found", file=sys.stderr)
        return 1
    docs = len(iter_doc_files())
    n_flags = sum(len(argparse_flags(source)) for source in CLI_SOURCES)
    print(f"docs check ok: {docs} file(s), all relative links resolve, "
          f"all {n_flags} CLI flags documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

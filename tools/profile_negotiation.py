#!/usr/bin/env python3
"""Profile the negotiation hot path (E4's scenario at a chosen scale).

Runs the agent-based movie-playback negotiation (the E4/E18 scenario)
at one or more node counts, reports wall time per run plus a per-phase
breakdown aggregated from cProfile data, and optionally writes a JSON
summary (uploaded as a CI artifact by the smoke job)::

    PYTHONPATH=src python tools/profile_negotiation.py
    PYTHONPATH=src python tools/profile_negotiation.py --nodes 64,128 --seeds 5
    PYTHONPATH=src python tools/profile_negotiation.py --top 25 --out prof.json

Phases are attributed by module/function (cumulative time):

* **formulation** — the Section 5 degrade loop every provider runs per
  CFP (``repro.core.formulation``), including demand probing;
* **evaluation** — eq. 2–5 proposal scoring + winner selection
  (``repro.core.evaluation`` / ``repro.core.selection``);
* **network** — message transmission, routing and delivery
  (``repro.network``);
* **topology** — topology maintenance and multi-hop routing only
  (``repro.network.topology`` + the geometry arena): the rebuild /
  route-cache slice of **network**, reported separately so the
  vectorized arena's share stays visible;
* **setup** — fleet/topology/agent construction
  (``repro.experiments.scenario`` + topology rebuilds).

With ``--shards`` the profiled workload is the **sharded streaming
run** instead (:func:`repro.shard.run_sharded_contention` on an
E22-style constant-density config at the chosen node counts), and two
shard-specific buckets join the breakdown:

* **gateway-routing** — gateway election and cross-shard
  stitched routing (``ShardedCluster.gateway`` / ``multihop_cost`` /
  ``shortest_route``);
* **delta-rebuild** — the mobility-tick incremental arena updates
  (``Topology.update_positions`` under
  ``ShardedCluster.advance_mobility``).

Phase fragments may pin a function with ``path::function`` — the row
must match both the file path and the function name.

Cumulative percentages can overlap (phases nest inside the engine loop)
— read them as "share of profiled time spent under this subsystem", not
as a partition. The full optimization story lives in
``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Phase name -> fragments whose cumulative time it aggregates. A plain
#: fragment matches the file path; ``path::function`` pins one function.
PHASES = {
    "formulation": ("repro/core/formulation.py",),
    "evaluation": ("repro/core/evaluation.py", "repro/core/selection.py"),
    "network": ("repro/network/",),
    "topology": ("repro/network/topology.py", "repro/network/geometry.py"),
    "setup": ("repro/experiments/scenario.py",),
}

#: The --shards breakdown: the streaming-session engine plus the two
#: buckets the sharded path adds (cross-shard routing, delta rebuilds).
SHARD_PHASES = {
    "formulation": ("repro/core/formulation.py",),
    "evaluation": ("repro/core/evaluation.py", "repro/core/selection.py"),
    "sessions": ("repro/sessions/",),
    "topology": ("repro/network/topology.py", "repro/network/geometry.py"),
    "gateway-routing": (
        "repro/shard/cluster.py::gateway",
        "repro/shard/cluster.py::multihop_cost",
        "repro/shard/cluster.py::shortest_route",
        "repro/shard/cluster.py::communication_cost",
    ),
    "delta-rebuild": (
        "repro/shard/cluster.py::advance_mobility",
        "repro/network/topology.py::update_positions",
    ),
    "shard-rebuild": ("repro/shard/cluster.py::rebuild",),
}


def run_once(n_nodes: int, seed: int) -> float:
    """One E4-scenario negotiation; returns the wall time in seconds."""
    from repro.experiments.config import ClusterConfig
    from repro.experiments.scenario import build_agent_system
    from repro.services import workload

    start = time.perf_counter()
    system = build_agent_system(
        ClusterConfig(n_nodes=n_nodes, area=100.0), seed, reliable_channel=True
    )
    service = workload.movie_playback_service(requester="requester")
    outcome = system.negotiate(service)
    elapsed = time.perf_counter() - start
    if outcome is None:
        raise RuntimeError(f"negotiation returned no outcome (n={n_nodes}, seed={seed})")
    return elapsed


def run_once_sharded(n_nodes: int, seed: int) -> float:
    """One sharded streaming run (the E22 regime at this node count);
    returns the wall time in seconds."""
    from repro.experiments.shard_suites import _e22_config
    from repro.shard import run_sharded_contention

    config = _e22_config(n_nodes, horizon=120.0)
    start = time.perf_counter()
    result = run_sharded_contention(seed, config)
    elapsed = time.perf_counter() - start
    if result.offered() <= 0:
        raise RuntimeError(f"sharded run offered no sessions (n={n_nodes}, seed={seed})")
    return elapsed


def _fragment_matches(fragment: str, path: str, fn: str) -> bool:
    if "::" in fragment:
        path_part, func_part = fragment.split("::", 1)
        return path_part in path and fn == func_part
    return fragment in path


def phase_breakdown(
    stats: pstats.Stats, phase_map: Dict[str, tuple] = PHASES
) -> Dict[str, float]:
    """Per-phase cumulative seconds, from the profile's per-function rows.

    For each phase the *maximum* cumtime among its matching functions is
    used: the top-level entry point of a subsystem dominates its callees'
    cumtimes, so the max approximates "time under this subsystem" without
    double-counting nested frames.
    """
    best: Dict[str, float] = {name: 0.0 for name in phase_map}
    for (filename, _lineno, fn), (_cc, _nc, _tt, ct, _callers) in stats.stats.items():
        path = filename.replace("\\", "/")
        for phase, fragments in phase_map.items():
            if any(_fragment_matches(f, path, fn) for f in fragments):
                best[phase] = max(best[phase], ct)
    return best


def profile_scale(
    n_nodes: int, seeds: List[int], top: int, shards: bool = False
) -> Dict[str, Any]:
    """Wall times + profile summary for one node count."""
    runner = run_once_sharded if shards else run_once
    walls = [runner(n_nodes, seed) for seed in seeds]

    profiler = cProfile.Profile()
    profiler.enable()
    for seed in seeds:
        runner(n_nodes, seed)
    profiler.disable()
    stats = pstats.Stats(profiler)
    total = stats.total_tt
    phases = phase_breakdown(stats, SHARD_PHASES if shards else PHASES)

    kind = "sharded streaming run" if shards else "negotiation"
    print(f"\n== {n_nodes} nodes ({len(seeds)} seed(s), {kind}) ==")
    print(f"  wall time per negotiation: mean {sum(walls) / len(walls) * 1e3:.1f} ms "
          f"(min {min(walls) * 1e3:.1f}, max {max(walls) * 1e3:.1f})")
    print(f"  profiled time: {total:.3f} s; per-phase share (cumulative, may overlap):")
    width = max(len(name) for name in phases)
    for phase, seconds in phases.items():
        share = 100.0 * seconds / total if total > 0 else 0.0
        print(f"    {phase:>{width}}: {seconds:7.3f} s  ({share:5.1f} %)")
    if top > 0:
        print(f"  top {top} functions by internal time:")
        stats.sort_stats("tottime")
        rows = stats.get_stats_profile().func_profiles
        shown = sorted(rows.items(), key=lambda kv: -kv[1].tottime)[:top]
        for name, row in shown:
            print(f"    {row.tottime:8.3f}s  {row.ncalls:>10}  {name}")
    return {
        "nodes": n_nodes,
        "workload": "sharded-streaming" if shards else "negotiation",
        "seeds": seeds,
        "wall_s": walls,
        "wall_mean_s": sum(walls) / len(walls),
        "profiled_total_s": total,
        "phases_cumulative_s": phases,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/profile_negotiation.py",
        description="Profile the E4-scenario negotiation hot path; print a "
                    "per-phase wall-time breakdown per node count.",
    )
    parser.add_argument(
        "--nodes", default="64", metavar="N[,N...]",
        help="comma-separated node counts to profile (default 64)",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, metavar="K",
        help="replications (seeds 1..K) per node count (default 3)",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="ROWS",
        help="rows of the per-function profile table to print (default "
             "10; 0 disables it)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write the run summary as JSON (for CI artifacts)",
    )
    parser.add_argument(
        "--shards", action="store_true",
        help="profile the sharded streaming run (repro.shard, E22 "
             "regime) instead of the single negotiation, with "
             "gateway-routing and delta-rebuild phase buckets",
    )
    args = parser.parse_args(argv)

    try:
        node_counts = [int(tok) for tok in args.nodes.split(",") if tok.strip()]
    except ValueError:
        print(f"--nodes must be comma-separated integers, got {args.nodes!r}",
              file=sys.stderr)
        return 2
    if not node_counts or any(n < 2 for n in node_counts):
        print("--nodes needs at least one count >= 2", file=sys.stderr)
        return 2
    if args.seeds < 1:
        print("--seeds must be at least 1", file=sys.stderr)
        return 2

    seeds = list(range(1, args.seeds + 1))
    summary = [
        profile_scale(n, seeds, args.top, shards=args.shards)
        for n in node_counts
    ]
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"\nsummary written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Determinism & contract linter (blocking CI gate).

Statically enforces the invariants the test suite only samples — seeded
RNG discipline, no wall clock in simulated time, ordered iteration,
narrow exception handlers, snapshot-once feature switches, epoch-bumped
topology mutation — via the :mod:`repro.analysis` rule engine::

    python tools/lint_repro.py                     # lint src/repro
    python tools/lint_repro.py --rules R1,R3       # subset of rules
    python tools/lint_repro.py --json              # machine-readable
    python tools/lint_repro.py --update-baseline   # grandfather findings
    python tools/lint_repro.py --paths src/repro/sim tools/lint_repro.py
    python tools/lint_repro.py --list-rules        # rule catalog

Suppress a single deliberate finding in source with::

    risky_line()  # repro: allow[R3] iteration feeds an order-free sum

Exit codes: 0 = clean (suppressed/baselined findings do not fail);
1 = at least one new finding; 2 = bad invocation.

See ``docs/static-analysis.md`` for the rule catalog and the baseline
workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis import (  # noqa: E402  (sys.path bootstrap above)
    AnalysisEngine,
    Baseline,
    RuleConfig,
    default_rules,
    render_json,
    render_text,
    select_rules,
)

DEFAULT_BASELINE = REPO / "tools" / "lint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="static determinism & contract linter for src/repro",
    )
    parser.add_argument(
        "--paths",
        nargs="+",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="SPECS",
        help="comma-separated rule ids or names to run "
        "(e.g. 'R1,unordered-iteration'; default: all six)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        metavar="FILE",
        help="baseline file of grandfathered findings "
        "(default: tools/lint_baseline.json; missing file = empty)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding "
        "(existing reasons are kept; new entries get a placeholder)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the versioned JSON report instead of text",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, name, rationale) and exit",
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = RuleConfig()
    if args.rules:
        try:
            rules = select_rules(
                [spec.strip() for spec in args.rules.split(",") if spec.strip()],
                config,
            )
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    else:
        rules = default_rules(config)
    if args.list_rules:
        width = max(len(rule.name) for rule in rules)
        for rule in rules:
            print(f"{rule.id}  {rule.name:<{width}}  {rule.rationale}")
        return 0

    engine = AnalysisEngine(rules, REPO)
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not (p if p.is_absolute() else REPO / p).exists()]
    if missing:
        print(
            f"no such path(s): {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    if args.update_baseline:
        report = engine.analyze_paths(paths, baseline=None)
        previous = Baseline.load(args.baseline)
        updated = Baseline.from_findings(report.findings)
        updated.merge_reasons(previous)
        updated.save(args.baseline)
        print(
            f"baseline updated: {len(updated.entries)} entr(y/ies) "
            f"written to {args.baseline}"
        )
        return 0

    try:
        baseline = Baseline.load(args.baseline)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    report = engine.analyze_paths(paths, baseline=baseline)
    if args.json:
        print(render_json(report, rules))
    else:
        print(render_text(report))
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Diff two ``BENCH_<suite>.json`` reports (perf-trajectory CI gate).

Compares an *old* (baseline) and a *new* bench report of the same suite
and reports, per ``(sweep point, metric)`` cell, how far the new mean
drifted from the old one — plus the wall-time change::

    python tools/bench_diff.py old/BENCH_E15.json new/BENCH_E15.json
    python tools/bench_diff.py a.json b.json --rtol 0 --wall-rtol 0.5
    python tools/bench_diff.py a.json b.json --band bootstrap

Two noise bands decide what counts as a **regression**:

* ``--band rtol`` (the default; stdlib only) — the historical rule::

      |new.mean - old.mean| > rtol * |old.mean| + atol + ci_slack

  where ``ci_slack`` (on by default, disable with ``--no-ci-slack``) is
  the sum of the two cells' 95% normal-approximation CI half-widths.

* ``--band bootstrap`` — the statistically honest rule (needs the
  ``repro`` package importable, for :mod:`repro.metrics.bootstrap`):
  both reports carry per-seed ``samples`` in every summary cell and are
  replicated over the *same* seed list, so the per-seed differences are
  paired. The gate resamples those paired differences (``--resamples``
  resamples, fixed ``--boot-seed``) into a two-sided ``1 - alpha``
  percentile interval — the cell's own noise band. A cell regresses
  when the band excludes zero (beyond ``--atol``): deterministic
  ("exact") metrics have identical samples and pass trivially, any
  consistent drift in them yields the degenerate band ``[c, c]`` and
  fails, and noisy (timing-like) cells pass exactly when their drift is
  statistically indistinguishable from replication noise — no
  hand-picked tolerance anywhere. Cells missing samples (schema-v1
  reports) fall back to the rtol rule and are flagged.

Wall time is *reported* always but only *gated* when ``--wall-rtol`` is
given (CI runners are too noisy to gate by default): a regression is
``new.wall > old.wall * (1 + wall_rtol)``.

Some suites additionally carry wall-clock *metric columns* (e.g. E22's
``sessions/s (wall)``) — machine-dependent by construction, like the
suite wall time. Columns whose name matches ``--wall-columns`` (a
regex, default ``\(wall\)``) are reported with their drift but **never
gated**, under either band; pass ``--wall-columns ''`` to disable the
exemption.

Exit codes: 0 = comparable and within tolerance; 1 = at least one
regression; 2 = the reports are not comparable (different suite, seeds,
sweep points, or columns) or the invocation is bad.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Pattern, Tuple

#: Metric columns matching this regex hold wall-clock-derived values
#: (machine-dependent): reported, never gated. CLI: ``--wall-columns``.
WALL_COLUMNS_DEFAULT = r"\(wall\)"


def _is_wall_column(column: str, wall_columns: Optional[Pattern[str]]) -> bool:
    return wall_columns is not None and bool(wall_columns.search(column))


def load_report(path: Path) -> Dict[str, Any]:
    """Load one bench report, exiting with code 2 on malformed input."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read bench report {path}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    for key in ("suite", "seeds", "wall_time_s", "table"):
        if key not in data:
            print(f"{path}: not a bench report (missing {key!r})", file=sys.stderr)
            raise SystemExit(2)
    return data


def summary_cells(report: Dict[str, Any]) -> Dict[Tuple[str, str], Dict[str, float]]:
    """``(sweep point, column) -> summary dict`` for every Summary cell.

    The first column of every suite table is the sweep-point label;
    the remaining cells are ``{"__summary__": {...}}`` per-metric
    summaries (see ``repro.experiments.reporting``).
    """
    table = report["table"]
    columns = table["columns"]
    cells: Dict[Tuple[str, str], Dict[str, float]] = {}
    for row in table["rows"]:
        point = str(row[0])
        for column, cell in zip(columns[1:], row[1:]):
            if isinstance(cell, dict) and "__summary__" in cell:
                cells[(point, column)] = cell["__summary__"]
    return cells


def check_comparable(old: Dict[str, Any], new: Dict[str, Any]) -> List[str]:
    """Structural mismatches that make a drift comparison meaningless."""
    problems = []
    if old["suite"] != new["suite"]:
        problems.append(f"suite: {old['suite']!r} != {new['suite']!r}")
    if old["seeds"] != new["seeds"]:
        problems.append(f"seeds: {old['seeds']} != {new['seeds']}")
    ta, tb = old["table"], new["table"]
    if ta["columns"] != tb["columns"]:
        problems.append(f"columns: {ta['columns']} != {tb['columns']}")
    points_a = [str(r[0]) for r in ta["rows"]]
    points_b = [str(r[0]) for r in tb["rows"]]
    if points_a != points_b:
        problems.append(f"sweep points: {points_a} != {points_b}")
    if not problems:
        # Same shape, but a cell may be a summary in one report and a
        # raw value in the other (e.g. a suite changed what it emits).
        only_old = sorted(set(summary_cells(old)) - set(summary_cells(new)))
        only_new = sorted(set(summary_cells(new)) - set(summary_cells(old)))
        for point, column in only_old:
            problems.append(f"[{point}] {column}: summary only in old report")
        for point, column in only_new:
            problems.append(f"[{point}] {column}: summary only in new report")
    return problems


def _bootstrap_module():
    """Import :mod:`repro.metrics.bootstrap`, falling back to the
    checkout's ``src/`` tree next to this script (exit 2 if neither
    works — the default rtol band stays stdlib-only)."""
    try:
        from repro.metrics import bootstrap
        return bootstrap
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        try:
            from repro.metrics import bootstrap
            return bootstrap
        except ImportError:
            print(
                "--band bootstrap needs the repro package importable "
                "(pip install -e . or PYTHONPATH=src)",
                file=sys.stderr,
            )
            raise SystemExit(2) from None


def diff_metrics(
    old: Dict[str, Any],
    new: Dict[str, Any],
    rtol: float,
    atol: float,
    ci_slack: bool,
    wall_columns: Optional[Pattern[str]] = None,
) -> Tuple[List[str], List[str]]:
    """(drift report lines, regression lines) under the rtol band."""
    old_cells = summary_cells(old)
    new_cells = summary_cells(new)
    lines: List[str] = []
    regressions: List[str] = []
    for key in old_cells:
        a, b = old_cells[key], new_cells[key]
        drift = abs(b["mean"] - a["mean"])
        if drift == 0.0:
            continue
        point, column = key
        if _is_wall_column(column, wall_columns):
            lines.append(
                f"  [{point}] {column}: {a['mean']:.6g} -> {b['mean']:.6g} "
                f"(drift {drift:.3g}; wall column, not gated)"
            )
            continue
        allowed = rtol * abs(a["mean"]) + atol
        if ci_slack:
            allowed += a["ci_half_width"] + b["ci_half_width"]
        line = (
            f"  [{point}] {column}: {a['mean']:.6g} -> {b['mean']:.6g} "
            f"(drift {drift:.3g}, allowed {allowed:.3g})"
        )
        lines.append(line)
        if drift > allowed:
            regressions.append(line)
    return lines, regressions


def diff_metrics_bootstrap(
    old: Dict[str, Any],
    new: Dict[str, Any],
    rtol: float,
    atol: float,
    ci_slack: bool,
    alpha: float,
    resamples: int,
    boot_seed: int,
    wall_columns: Optional[Pattern[str]] = None,
) -> Tuple[List[str], List[str]]:
    """(drift report lines, regression lines) under the bootstrap band.

    Per drifted cell the line shows the paired-difference percentile
    interval the decision is based on. Cells without per-seed samples
    on both sides fall back to the rtol rule (flagged in the line).
    """
    bootstrap = _bootstrap_module()
    old_cells = summary_cells(old)
    new_cells = summary_cells(new)
    lines: List[str] = []
    regressions: List[str] = []
    for key in old_cells:
        a, b = old_cells[key], new_cells[key]
        point, column = key
        if _is_wall_column(column, wall_columns):
            drift = abs(b["mean"] - a["mean"])
            if drift > 0.0:
                lines.append(
                    f"  [{point}] {column}: {a['mean']:.6g} -> "
                    f"{b['mean']:.6g} (drift {drift:.3g}; wall column, "
                    f"not gated)"
                )
            continue
        sa, sb = a.get("samples"), b.get("samples")
        if sa is None or sb is None or len(sa) != len(sb):
            # Schema-v1 report (or ragged cell): only means survive.
            drift = abs(b["mean"] - a["mean"])
            if drift == 0.0:
                continue
            allowed = rtol * abs(a["mean"]) + atol
            if ci_slack:
                allowed += a["ci_half_width"] + b["ci_half_width"]
            line = (
                f"  [{point}] {column}: {a['mean']:.6g} -> {b['mean']:.6g} "
                f"(drift {drift:.3g}, allowed {allowed:.3g}; no samples, "
                f"rtol rule)"
            )
            lines.append(line)
            if drift > allowed:
                regressions.append(line)
            continue
        if list(sa) == list(sb):
            continue  # bit-identical cell: exact pass
        ci = bootstrap.bootstrap_diff_ci(
            sa, sb, alpha=alpha, n_resamples=resamples, seed=boot_seed
        )
        delta = b["mean"] - a["mean"]
        line = (
            f"  [{point}] {column}: {a['mean']:.6g} -> {b['mean']:.6g} "
            f"(Δ {delta:+.3g}, {1 - alpha:.0%} noise band "
            f"[{ci.lo:.3g}, {ci.hi:.3g}])"
        )
        lines.append(line)
        if ci.lo > atol or ci.hi < -atol:
            regressions.append(line + " excludes zero")
    return lines, regressions


def diff_wall_time(
    old: Dict[str, Any], new: Dict[str, Any], wall_rtol: Optional[float]
) -> Tuple[str, Optional[str]]:
    """(report line, regression line or None) for the wall-time change."""
    wa, wb = float(old["wall_time_s"]), float(new["wall_time_s"])
    change = (wb - wa) / wa if wa > 0 else 0.0
    line = f"  wall time: {wa:.2f}s -> {wb:.2f}s ({change:+.1%})"
    if wall_rtol is not None and wa > 0 and wb > wa * (1.0 + wall_rtol):
        return line, line + f" exceeds --wall-rtol {wall_rtol}"
    return line, None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench_diff.py",
        description="Diff two BENCH_<suite>.json reports; exit 1 on metric "
                    "(or, with --wall-rtol, wall-time) regressions beyond "
                    "the noise band.",
    )
    parser.add_argument("old", type=Path, help="baseline bench report")
    parser.add_argument("new", type=Path, help="candidate bench report")
    parser.add_argument(
        "--band", choices=("rtol", "bootstrap"), default="rtol",
        help="noise band deciding regressions: 'rtol' (relative drift + "
             "CI slack, stdlib only) or 'bootstrap' (paired per-seed "
             "percentile interval from the reports' samples; identical "
             "samples pass exactly)",
    )
    parser.add_argument(
        "--rtol", type=float, default=0.05, metavar="FRAC",
        help="relative mean-drift tolerance per metric under --band rtol "
             "(and the fallback for sample-less cells; default 0.05)",
    )
    parser.add_argument(
        "--atol", type=float, default=1e-9, metavar="ABS",
        help="absolute mean-drift tolerance per metric (default 1e-9)",
    )
    parser.add_argument(
        "--no-ci-slack", action="store_true",
        help="do not widen the rtol tolerance by the two cells' 95%% CI "
             "half-widths (gate on raw drift only)",
    )
    parser.add_argument(
        "--alpha", type=float, default=0.05, metavar="A",
        help="two-sided miss probability of the bootstrap noise band "
             "(default 0.05 → 95%% interval)",
    )
    parser.add_argument(
        "--resamples", type=int, default=10000, metavar="B",
        help="bootstrap resamples for the noise band (default 10000)",
    )
    parser.add_argument(
        "--boot-seed", type=int, default=1905, metavar="SEED",
        help="seed of the deterministic resampling generator "
             "(default 1905)",
    )
    parser.add_argument(
        "--wall-rtol", type=float, default=None, metavar="FRAC",
        help="also fail when new wall time exceeds old by this fraction "
             "(default: wall time is reported, not gated)",
    )
    parser.add_argument(
        "--wall-columns", default=WALL_COLUMNS_DEFAULT, metavar="REGEX",
        help="metric columns matching this regex hold wall-clock-derived "
             "values: their drift is reported but never gated (default "
             "%(default)r; pass '' to gate every column)",
    )
    args = parser.parse_args(argv)
    try:
        wall_columns = (
            re.compile(args.wall_columns) if args.wall_columns else None
        )
    except re.error as exc:
        print(f"invalid --wall-columns regex: {exc}", file=sys.stderr)
        return 2

    old = load_report(args.old)
    new = load_report(args.new)
    problems = check_comparable(old, new)
    if problems:
        print(f"reports are not comparable ({args.old} vs {args.new}):",
              file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 2

    if args.band == "bootstrap":
        lines, regressions = diff_metrics_bootstrap(
            old, new, rtol=args.rtol, atol=args.atol,
            ci_slack=not args.no_ci_slack, alpha=args.alpha,
            resamples=args.resamples, boot_seed=args.boot_seed,
            wall_columns=wall_columns,
        )
    else:
        lines, regressions = diff_metrics(
            old, new, rtol=args.rtol, atol=args.atol,
            ci_slack=not args.no_ci_slack, wall_columns=wall_columns,
        )
    wall_line, wall_regression = diff_wall_time(old, new, args.wall_rtol)
    if wall_regression is not None:
        regressions.append(wall_regression)

    suite = old["suite"]
    print(f"{suite}: {args.old} -> {args.new} (band: {args.band})")
    print(wall_line)
    if lines:
        print(f"  {len(lines)} metric cell(s) drifted:")
        for line in lines:
            print(line)
    else:
        print("  all metric means identical")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond the noise band:",
              file=sys.stderr)
        for line in regressions:
            print(line, file=sys.stderr)
        return 1
    print("ok: within the noise band")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

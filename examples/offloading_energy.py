#!/usr/bin/env python
"""Offloading economics: battery drain with and without cooperation.

The paper's Section 7 motivation: "such a default action [local
processing] may suffer time penalty and, possibly, battery energy loss".
This example runs a surveillance feed on a phone repeatedly until the
battery dies, alone vs. with a laptop neighbor taking the video decode,
and reports how many service rounds each strategy sustains.

Run:
    python examples/offloading_energy.py
"""

from repro import DiscRadio, Node, NodeClass, QoSProvider, Topology, workload
from repro.core import baselines
from repro.core.negotiation import negotiate, release_coalition
from repro.resources.kinds import ResourceKind

#: Requester-side radio energy per kB shipped to a remote executor.
TRANSFER_ENERGY_PER_KB = 0.1


def rounds_sustained(cooperative: bool) -> tuple[int, float]:
    """How many surveillance rounds before the phone battery dies."""
    phone = Node("phone", NodeClass.PHONE, position=(0, 0))
    nodes = [phone]
    if cooperative:
        nodes.append(Node("laptop", NodeClass.LAPTOP, position=(20, 0)))
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}

    rounds = 0
    while phone.alive and rounds < 200:
        service = workload.surveillance_service(requester="phone",
                                                name=f"round-{rounds}")
        if cooperative:
            outcome = negotiate(service, topology, providers, commit=True)
        else:
            outcome = baselines.single_node(service, topology, providers)
            # Dry-run baseline: charge the phone its execution energy.
            for award in outcome.coalition.awards.values():
                phone.consume_energy(award.demand.get(ResourceKind.ENERGY))
        if not outcome.success:
            break
        if cooperative:
            # Radio cost of shipping offloaded task data.
            for task in service.tasks:
                award = outcome.coalition.awards.get(task.task_id)
                if award is not None and award.node_id != "phone":
                    phone.consume_energy(
                        task.transfer_kb() * TRANSFER_ENERGY_PER_KB
                    )
            release_coalition(outcome.coalition, providers)
        rounds += 1
    return rounds, phone.battery


def main() -> None:
    alone_rounds, alone_left = rounds_sustained(cooperative=False)
    coop_rounds, coop_left = rounds_sustained(cooperative=True)
    print("surveillance rounds sustained on one phone battery:")
    print(f"  alone:       {alone_rounds:4d} rounds "
          f"(battery left: {alone_left:7.1f} J)")
    print(f"  cooperating: {coop_rounds:4d} rounds "
          f"(battery left: {coop_left:7.1f} J)")
    if alone_rounds:
        print(f"  -> cooperation multiplies battery life by "
              f"{coop_rounds / alone_rounds:.1f}x")


if __name__ == "__main__":
    main()

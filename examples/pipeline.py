#!/usr/bin/env python
"""A media pipeline across a coalition, with a mid-stage crash.

The paper scopes services to "a set (for now) of independent tasks"; this
example exercises the precedence extension: a fetch → decode → enhance
pipeline (plus an independent audio task) is allocated across a
neighborhood, executes in stage order on different nodes, and survives
the decode executor crashing mid-stage.

Run:
    python examples/pipeline.py
"""

from repro import DiscRadio, Node, NodeClass, QoSProvider, Topology, workload
from repro.core.negotiation import negotiate
from repro.core.operation import run_operation_phase
from repro.sim.engine import Engine


def main() -> None:
    nodes = [
        Node("tablet", NodeClass.PDA, position=(50, 50)),
        Node("lap-a", NodeClass.LAPTOP, position=(60, 50)),
        Node("lap-b", NodeClass.LAPTOP, position=(40, 50)),
        Node("lap-c", NodeClass.LAPTOP, position=(50, 65)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}

    service = workload.pipeline_service(requester="tablet")
    fetch, decode, enhance, audio = (t.task_id for t in service.tasks)
    print(f"pipeline: {fetch} -> {decode} -> {enhance}   (audio ∥)")
    print(f"critical path: {service.critical_path_length():.0f} s\n")

    outcome = negotiate(service, topology, providers, commit=True)
    assert outcome.success
    for task in service.tasks:
        award = outcome.coalition.awards[task.task_id]
        print(f"  {task.task_id:>22} -> {award.node_id}")

    # Crash the decode executor 4 s into its stage (t = 12 s).
    victim = outcome.coalition.awards[decode].node_id
    print(f"\ninjecting crash of {victim!r} at t=12 s (mid-decode) ...\n")
    engine = Engine(seed=11)
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine,
        failures=[(12.0, victim)],
    )

    print("execution timeline:")
    for task in service.tasks:
        o = report.outcomes[task.task_id]
        extra = f" (reallocated {o.reallocations}x)" if o.reallocations else ""
        print(f"  t={o.finished_at:6.1f}s  {o.task_id:>22} {o.status} "
              f"on {o.node_id}{extra}")
    print(f"\nmakespan: {report.makespan:.0f} s "
          f"(critical path {service.critical_path_length():.0f} s + "
          f"one restarted stage)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Video conferencing in a mobile ad-hoc neighborhood, with failures.

Exercises the full stack the paper describes:

* a three-dimension QoS spec with an inter-attribute dependency (the
  heavy wavelet codec is only usable at <= 20 fps);
* random-waypoint mobility churning the requester's neighborhood;
* repeated coalition formation as the topology changes;
* a mid-operation node failure triggering coalition reconfiguration.

Run:
    python examples/mobile_conference.py
"""

from repro import Node, NodeClass, outcome_utility, run_operation_phase, workload
from repro.agents.system import AgentSystem
from repro.core.negotiation import negotiate, release_coalition
from repro.network.mobility import RandomWaypoint
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


def mobile_negotiations() -> None:
    print("=== conferencing while moving (random waypoint, 2 m/s) ===")
    registry = RngRegistry(7)
    nodes = [Node("me", NodeClass.PDA)] + [
        Node(f"peer-{i}", NodeClass.LAPTOP if i % 2 else NodeClass.PDA)
        for i in range(9)
    ]
    mobility = RandomWaypoint(180, 180, 0.5, 2.0, pause=2.0,
                              rng=registry.stream("mobility"))
    system = AgentSystem(nodes, seed=7, mobility=mobility)
    system.start_mobility_process(tick=1.0, until=400.0)

    for round_no in range(4):
        service = workload.conference_service(requester="me", name=f"call-{round_no}")
        outcome = system.negotiate(service)
        t = system.engine.now
        if outcome is None or not outcome.success:
            print(f"  t={t:7.2f}s call-{round_no}: no coalition "
                  f"(neighbors drifted out of range)")
        else:
            award = next(iter(outcome.coalition.awards.values()))
            codec = award.proposal.values.get("codec")
            print(f"  t={t:7.2f}s call-{round_no}: served by {award.node_id} "
                  f"codec={codec} utility={outcome_utility(outcome):.3f}")
            release_coalition(outcome.coalition, system.providers, t)
        system.engine.run(until=t + 60.0)
    print()


def failure_and_reconfiguration() -> None:
    print("=== mid-call failure and coalition reconfiguration ===")
    from repro.network.radio import DiscRadio
    from repro.network.topology import Topology
    from repro.resources.provider import QoSProvider

    nodes = [
        Node("me", NodeClass.PDA, position=(50, 50)),
        Node("lap-a", NodeClass.LAPTOP, position=(60, 50)),
        Node("lap-b", NodeClass.LAPTOP, position=(40, 50)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    service = workload.conference_service(requester="me")
    outcome = negotiate(service, topology, providers, commit=True)
    assert outcome.success
    winner = next(iter(outcome.coalition.members))
    print(f"  call hosted by {winner}")

    engine = Engine(seed=3)
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine,
        failures=[(10.0, winner)],  # crash the host 10 s into the call
    )
    for tid, task_outcome in report.outcomes.items():
        print(f"  task {tid}: {task_outcome.status} on {task_outcome.node_id} "
              f"after {task_outcome.reallocations} reallocation(s)")
    print(f"  reconfigurations: {report.reconfigurations}, "
          f"recovery rate: {report.recovery_rate:.0%}")


def main() -> None:
    mobile_negotiations()
    failure_and_reconfiguration()


if __name__ == "__main__":
    main()

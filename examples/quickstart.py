#!/usr/bin/env python
"""Quickstart: a weak phone offloads movie playback to nearby laptops.

This is the paper's core scenario in ~30 lines: a phone-class device
cannot decode a full-quality movie on its own, so it broadcasts a
call-for-proposals to the laptops that happen to be in radio range, they
answer with the quality levels they can serve, and a coalition forms.

Run:
    python examples/quickstart.py
"""

from repro import AgentSystem, Node, NodeClass, outcome_utility, workload
from repro.core import baselines


def main() -> None:
    # A spontaneous neighborhood: one phone, three laptops.
    nodes = [Node("phone", NodeClass.PHONE)] + [
        Node(f"laptop-{i}", NodeClass.LAPTOP) for i in range(3)
    ]
    system = AgentSystem(nodes, seed=42, reliable_channel=True)

    # The user asks for full-quality movie playback on the phone.
    service = workload.movie_playback_service(requester="phone")

    # First: what happens without cooperation?
    solo = baselines.single_node(service, system.topology, system.providers)
    print(f"alone:     {solo.summary()}")
    print(f"           utility = {outcome_utility(solo):.3f}")

    # Now run the paper's negotiation protocol over the simulated radio.
    outcome = system.negotiate(service)
    assert outcome is not None
    print(f"coalition: {outcome.summary()}")
    print(f"           utility = {outcome_utility(outcome):.3f}")

    print("\nper-task awards:")
    for task in service.tasks:
        award = outcome.coalition.awards.get(task.task_id)
        if award is None:
            print(f"  {task.task_id}: UNALLOCATED")
            continue
        values = ", ".join(f"{k}={v}" for k, v in sorted(award.proposal.values.items()))
        print(f"  {task.task_id} -> {award.node_id}  ({values})")


if __name__ == "__main__":
    main()

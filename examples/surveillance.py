#!/usr/bin/env python
"""The paper's Section 3.1 remote-surveillance request, end to end.

Demonstrates the QoS representation layer: the qualitative preference
order (video over audio, frame rate over color depth), how the Section 5
heuristic degrades quality when the serving node is loaded, and how the
eqs. 2–5 evaluator ranks competing proposals.

Run:
    python examples/surveillance.py
"""

from repro import (
    Capacity,
    Node,
    NodeClass,
    ProposalEvaluator,
    Proposal,
    formulate,
    local_reward,
    QoSProvider,
    workload,
)
from repro.metrics.utility import assignment_utility
from repro.qos import catalog
from repro.resources.kinds import ResourceKind


def show_request() -> None:
    request = catalog.surveillance_request()
    print("user request (decreasing importance):")
    for k, dp in enumerate(request.dimensions, start=1):
        print(f"  {k}. {dp.dimension}")
        for i, ap in enumerate(dp.attributes, start=1):
            items = ", ".join(str(item) for item in ap.items)
            print(f"     ({chr(96 + i)}) {ap.attribute}: {items}")
    print()


def degrade_under_load() -> None:
    """The Section 5 heuristic on devices of shrinking capacity."""
    service = workload.surveillance_service(requester="cam")
    video = service.tasks[0]
    print("formulation under load (video task):")
    print(f"  {'CPU budget':>10} | {'frame rate':>10} | {'color':>5} | "
          f"{'reward':>6} | {'utility':>7}")
    for budget in (120.0, 80.0, 60.0, 40.0, 25.0):
        node = Node("n", capacity=Capacity.of(
            cpu=budget, memory=64.0, bus_bandwidth=50.0,
            net_bandwidth=2000.0, energy=10_000.0,
        ))
        provider = QoSProvider(node)
        result = formulate(
            [video],
            lambda a: provider.can_serve(video.demand_at(a[video.task_id].values())),
        )
        values = result.values(video.task_id)
        a = result.assignments[video.task_id]
        print(f"  {budget:>10.0f} | {values[catalog.FRAME_RATE]:>10} | "
              f"{values[catalog.COLOR_DEPTH]:>5} | {local_reward(a):>6.2f} | "
              f"{assignment_utility(video.request, values):>7.3f}")
    print()


def evaluate_competing_proposals() -> None:
    """Three nodes offer different quality levels; eq. 2 picks a winner."""
    request = catalog.surveillance_request()
    evaluator = ProposalEvaluator(request)
    offers = {
        "strong-laptop": {catalog.FRAME_RATE: 10, catalog.COLOR_DEPTH: 3,
                          catalog.SAMPLING_RATE: 8, catalog.SAMPLE_BITS: 8},
        "busy-pda": {catalog.FRAME_RATE: 6, catalog.COLOR_DEPTH: 3,
                     catalog.SAMPLING_RATE: 8, catalog.SAMPLE_BITS: 8},
        "weak-phone": {catalog.FRAME_RATE: 3, catalog.COLOR_DEPTH: 1,
                       catalog.SAMPLING_RATE: 8, catalog.SAMPLE_BITS: 8},
    }
    print("proposal evaluation (eqs. 2-5, lower distance wins):")
    scored = []
    for node, values in offers.items():
        proposal = Proposal(task_id="video", node_id=node, values=values)
        scored.append((evaluator.distance(proposal), node))
    for distance, node in sorted(scored):
        marker = "  <- winner" if (distance, node) == min(scored) else ""
        print(f"  {node:>14}: distance = {distance:.4f}{marker}")


def main() -> None:
    show_request()
    degrade_under_load()
    evaluate_competing_proposals()


if __name__ == "__main__":
    main()
